"""``repro-analyze`` — command-line front door to the analysis engine.

Subcommands::

    repro-analyze raft  --n 5 --p 0.01            # one Raft deployment
    repro-analyze pbft  --n 4 --p 0.01            # one PBFT deployment
    repro-analyze table1                          # reproduce paper Table 1
    repro-analyze table2                          # reproduce paper Table 2
    repro-analyze plan  --target-nines 3.5        # cheapest plan for a target
    repro-analyze sweep --n 25 --p 0.01,0.02,0.05 # batched what-if sweep
    repro-analyze scenarios deployments.json      # JSON scenario file -> engine
    repro-analyze query questions.json            # mixed query kinds -> engine
    repro-analyze sensitivity --n 7 --p 0.08,0.08,0.08,0.08,0.01,0.01,0.01
    repro-analyze committee --n 100 --p 0.01 --target-nines 4
    repro-analyze mttf --n 5 --afr 0.08 --mttr-hours 24 [--json]

Every estimation routes through the reliability engine
(:mod:`repro.engine`), so sweeps and tables share batched DP sweeps and
the engine's memo cache.  ``scenarios`` is the front door for arbitrary
reliability workloads: a JSON file of scenario dicts (or a grid
description) runs through :meth:`ReliabilityEngine.run` and prints
per-scenario results with provenance.  ``query`` generalizes it to the
time domain: one JSON file may mix ``reliability``, ``availability``,
``mttf`` and ``simulation`` questions, each routed to its engine backend
(shared CTMC solves; sharded simulation campaigns).  ``mttf`` itself is
answered by those backends.  ``simulation`` rows accept a ``"faults"``
section — a declarative :mod:`repro.injection` fault plan of typed events
(``crash``, ``partition``, ``loss-burst``, ``delay-burst``,
``correlated-burst``) plus an adversary mix — so outage replays and
Byzantine attack campaigns are plain JSON::

    {"kind": "simulation", "scenario": {...}, "replicas": 50,
     "faults": {"adversary": {"nodes": [0, 2]},
                "events": [{"kind": "partition",
                            "groups": [[0, 1], [2, 3]],
                            "at": 2.0, "heal_at": 4.0}]}}

``raft``/``pbft``/``sweep``/``scenarios``/``query`` take ``--jobs N`` to
fan work over ``N`` worker processes (sharded counting-DP sweeps;
spawned-stream Monte-Carlo; simulation replica fan-out).  Results are
identical for any ``N``; leaving ``--jobs`` unset keeps the serial
legacy-stream path, byte-identical to older releases.

``query`` additionally takes the fault-tolerance flags of the supervised
campaign runtime (:mod:`repro.engine.runtime`): ``--timeout SECONDS``
bounds each campaign shard's wall clock, ``--retries K`` re-executes a
failed shard up to ``K`` times (bit-identically — retried shards replay
the same spawned stream), ``--on-shard-failure degrade`` keeps a partial
answer with ``degraded`` provenance instead of failing the run, and
``--resume DIR`` journals completed shards to ``DIR`` so an interrupted
campaign resumes from where it stopped.  None of these flags changes any
printed number.

Prints paper-style tables to stdout; exits non-zero on invalid input.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import analyze, analyze_batch, format_probability
from repro.faults.mixture import byzantine_fleet, uniform_fleet
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec


def _policy_from_args(args: argparse.Namespace):
    """Translate ``--jobs`` (and fault-tolerance flags) into a policy.

    ``--jobs`` unset keeps the serial legacy-stream path (byte-identical
    output).  Any explicit ``N >= 1`` switches to spawned-stream sharding
    over ``N`` worker processes — the printed numbers are identical for
    every ``N`` (shard plans never depend on the worker count); negative
    means one worker per CPU.  ``--timeout``/``--retries``/
    ``--on-shard-failure``/``--resume`` (where the subcommand offers
    them) route execution through the supervised campaign runtime; none
    of them changes any printed value.
    """
    from repro.engine import ExecutionPolicy

    supervision = {}
    if getattr(args, "timeout", None) is not None:
        supervision["timeout"] = args.timeout
    if getattr(args, "retries", None):
        supervision["retries"] = args.retries
    if getattr(args, "on_shard_failure", None) not in (None, "raise"):
        supervision["on_shard_failure"] = args.on_shard_failure
    if getattr(args, "resume", None) is not None:
        supervision["checkpoint_dir"] = args.resume
    return ExecutionPolicy.from_jobs(getattr(args, "jobs", None), **supervision)


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for sharded execution (default: serial; "
            "-1 = one per CPU; values never depend on the worker count)"
        ),
    )


def _print_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> None:
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _cmd_raft(args: argparse.Namespace) -> int:
    from repro.engine import Scenario, default_engine

    spec = RaftSpec(args.n, q_per=args.q_per, q_vc=args.q_vc)
    result = default_engine().run_one(
        Scenario(spec=spec, fleet=uniform_fleet(args.n, args.p)),
        policy=_policy_from_args(args),
    ).result
    _print_table(
        ["N", "|Qper|", "|Qvc|", "Safe %", "Live %", "Safe and Live %"],
        [[
            str(args.n),
            str(spec.q_per),
            str(spec.q_vc),
            format_probability(result.safe.value),
            format_probability(result.live.value),
            format_probability(result.safe_and_live.value),
        ]],
    )
    return 0


def _cmd_pbft(args: argparse.Namespace) -> int:
    from repro.engine import Scenario, default_engine

    spec = PBFTSpec(args.n)
    result = default_engine().run_one(
        Scenario(spec=spec, fleet=byzantine_fleet(args.n, args.p)),
        policy=_policy_from_args(args),
    ).result
    _print_table(
        ["N", "|Qeq|", "|Qper|", "|Qvc|", "|Qvc_t|", "Safe %", "Live %", "Safe and Live %"],
        [[
            str(args.n),
            str(spec.q_eq),
            str(spec.q_per),
            str(spec.q_vc),
            str(spec.q_vc_t),
            format_probability(result.safe.value),
            format_probability(result.live.value),
            format_probability(result.safe_and_live.value),
        ]],
    )
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    rows = []
    for n in (4, 5, 7, 8):
        spec = PBFTSpec(n)
        result = analyze(spec, byzantine_fleet(n, 0.01))
        rows.append(
            [
                str(n),
                str(spec.q_eq),
                str(spec.q_per),
                str(spec.q_vc),
                str(spec.q_vc_t),
                format_probability(result.safe.value),
                format_probability(result.live.value),
                format_probability(result.safe_and_live.value),
            ]
        )
    print("Table 1: PBFT reliability, uniform p_u = 1%")
    _print_table(
        ["N", "|Qeq|", "|Qper|", "|Qvc|", "|Qvc_t|", "Safe %", "Live %", "Safe and Live %"], rows
    )
    return 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    probabilities = (0.01, 0.02, 0.04, 0.08)
    rows = []
    for n in (3, 5, 7, 9):
        spec = RaftSpec(n)
        cells = [str(n), str(spec.q_per), str(spec.q_vc)]
        # One batched counting-DP sweep per row instead of a fleet at a time.
        results = analyze_batch(spec, [uniform_fleet(n, p) for p in probabilities])
        cells.extend(format_probability(r.safe_and_live.value) for r in results)
        rows.append(cells)
    print("Table 2: Raft reliability for uniform node failure p_u")
    _print_table(
        ["N", "|Qper|", "|Qvc|"] + [f"S&L p={p:.0%}" for p in probabilities], rows
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.planner import DEFAULT_PRICE_BOOK, find_cheapest_plan

    outcome = find_cheapest_plan(
        DEFAULT_PRICE_BOOK,
        args.target_nines,
        sizes=range(3, args.max_size + 1, 2),
    )
    if outcome.best is None:
        print(f"no plan up to {args.max_size} nodes reaches {args.target_nines} nines")
        return 1
    best = outcome.best
    print(f"target: {args.target_nines} nines safe&live (Raft, majority quorums)")
    print(f"best plan: {best.plan.describe()}")
    print(f"achieved:  {format_probability(best.reliability)}")
    return 0


def _parse_probabilities(raw: str, n: int) -> list[float]:
    parts = [float(piece) for piece in raw.split(",")]
    if len(parts) == 1:
        parts = parts * n
    if len(parts) != n:
        raise SystemExit(f"expected 1 or {n} probabilities, got {len(parts)}")
    return parts


def _cmd_sweep(args: argparse.Namespace) -> int:
    """What-if grid over per-node failure probabilities, one batched sweep."""
    try:
        probabilities = [float(piece) for piece in args.p.split(",")]
    except ValueError:
        raise SystemExit(f"--p must be comma-separated floats, got {args.p!r}")
    from repro.engine import Scenario, default_engine

    if args.protocol == "raft":
        spec = RaftSpec(args.n)
        fleets = [uniform_fleet(args.n, p) for p in probabilities]
    else:
        spec = PBFTSpec(args.n)
        fleets = [byzantine_fleet(args.n, p) for p in probabilities]
    results = default_engine().run(
        [Scenario(spec=spec, fleet=fleet) for fleet in fleets],
        policy=_policy_from_args(args),
    ).results
    rows = [
        [
            f"{p:.4f}",
            format_probability(result.safe.value),
            format_probability(result.live.value),
            format_probability(result.safe_and_live.value),
        ]
        for p, result in zip(probabilities, results)
    ]
    print(f"Sweep: {spec.name} n={args.n}, {len(fleets)} fleets in one kernel batch")
    _print_table(["p_fail", "Safe %", "Live %", "Safe and Live %"], rows)
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """Run a JSON scenario file through the reliability engine."""
    import json
    from pathlib import Path

    from repro.engine import ScenarioSet, default_engine
    from repro.errors import ReproError

    path = Path(args.file)
    if not path.exists():
        raise SystemExit(f"scenario file not found: {path}")
    try:
        scenario_set = ScenarioSet.from_json(path.read_text())
    except (ReproError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid scenario file {path}: {exc}")
    if not len(scenario_set):
        raise SystemExit(f"scenario file {path} contains no scenarios")
    engine_result = default_engine().run(scenario_set, policy=_policy_from_args(args))
    if args.json:
        payload = [
            {
                "label": outcome.scenario.label,
                "protocol": outcome.result.protocol,
                "n": outcome.result.n,
                "method": outcome.result.method,
                "safe": outcome.result.safe.value,
                "live": outcome.result.live.value,
                "safe_and_live": outcome.result.safe_and_live.value,
                "estimator": outcome.provenance.estimator,
                "cache_hit": outcome.provenance.cache_hit,
                "batched": outcome.provenance.batched,
            }
            for outcome in engine_result
        ]
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        [
            row["label"],
            row["protocol"],
            row["N"],
            row["Safe %"],
            row["Live %"],
            row["Safe and Live %"],
            row["via"],
        ]
        for row in engine_result.table()
    ]
    print(
        f"Scenarios: {len(engine_result)} run through the engine "
        f"({engine_result.cache_hits} cache hits)"
    )
    _print_table(
        ["scenario", "protocol", "N", "Safe %", "Live %", "Safe and Live %", "via"],
        rows,
    )
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.analysis.sensitivity import importance_ranking
    from repro.faults.mixture import Fleet, NodeModel

    probabilities = _parse_probabilities(args.p, args.n)
    fleet = Fleet(tuple(NodeModel(p) for p in probabilities))
    ranking = importance_ranking(RaftSpec(args.n), fleet, metric="live")
    rows = [
        [str(rank), str(node), f"{fleet[node].p_fail:.4f}", f"{score:.6f}"]
        for rank, (node, score) in enumerate(ranking, start=1)
    ]
    print(f"Birnbaum importance (liveness), Raft n={args.n}")
    _print_table(["rank", "node", "p_fail", "importance"], rows)
    return 0


def _cmd_committee(args: argparse.Namespace) -> int:
    from repro.faults.mixture import uniform_fleet as make_fleet
    from repro.planner.committee import smallest_committee_for_target

    fleet = make_fleet(args.n, args.p)
    assessment = smallest_committee_for_target(RaftSpec, fleet, args.target_nines)
    if assessment is None:
        print(
            f"no committee of the {args.n}-node pool (p={args.p}) reaches "
            f"{args.target_nines} nines"
        )
        return 1
    print(
        f"smallest committee: {assessment.committee_size} of {args.n} nodes -> "
        f"S&L {format_probability(assessment.safe_and_live)} [{assessment.method}]"
    )
    return 0


def _cmd_mttf(args: argparse.Namespace) -> int:
    """Storage-style Markov metrics, answered by the engine's time-domain
    backends (one MTTFQuery + one AvailabilityQuery sharing the chain)."""
    import json

    from repro.engine import AvailabilityQuery, MTTFQuery, default_engine

    answers = default_engine().run(
        [
            MTTFQuery.for_cluster(
                args.n, afr=args.afr, mttr_hours=args.mttr_hours, label=f"mttf/n={args.n}"
            ),
            AvailabilityQuery.for_cluster(
                args.n, afr=args.afr, mttr_hours=args.mttr_hours, label=f"mttf/n={args.n}"
            ),
        ]
    )
    mttf, availability = answers[0].value, answers[1].value
    if args.json:
        print(
            json.dumps(
                {
                    "n": args.n,
                    "afr": args.afr,
                    "mttr_hours": args.mttr_hours,
                    "quorum_size": mttf.quorum_size,
                    "mttf_hours": mttf.mttf_hours,
                    "mttf_years": mttf.mttf_years,
                    "mttdl_hours": mttf.mttdl_hours,
                    "mttdl_years": mttf.mttdl_years,
                    "availability": availability.availability,
                    "availability_nines": availability.availability_nines,
                },
                indent=2,
            )
        )
        return 0
    rows = [
        [
            str(args.n),
            f"{mttf.mttf_years:.3e}",
            f"{mttf.mttdl_years:.3e}",
            f"{availability.availability:.10f}",
        ]
    ]
    print(f"Markov metrics: AFR={args.afr:.1%}, MTTR={args.mttr_hours}h, majority quorums")
    _print_table(["N", "MTTF-liveness (yr)", "MTTDL (yr)", "availability"], rows)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """Run a mixed JSON query file through the engine's backends."""
    import json
    from pathlib import Path

    from repro.engine import QuerySet, default_engine
    from repro.errors import ReproError

    path = Path(args.file)
    if not path.exists():
        raise SystemExit(f"query file not found: {path}")
    try:
        query_set = QuerySet.from_json(path.read_text())
    except (ReproError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid query file {path}: {exc}")
    if not len(query_set):
        raise SystemExit(f"query file {path} contains no queries")
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro.obs import InMemoryExporter, Tracer, use_tracer, write_trace

        exporter = InMemoryExporter()
        tracer = Tracer.for_key(("repro-analyze query", path.read_text()), exporter=exporter)
        with use_tracer(tracer):
            answers = default_engine().run(query_set, policy=_policy_from_args(args))
        write_trace(exporter.records, trace_path)
    else:
        answers = default_engine().run(query_set, policy=_policy_from_args(args))
    if args.json:
        rows = []
        for answer in answers:
            row = answer.to_dict()
            report = answer.provenance.report
            if report is not None:
                row["run"] = report.to_dict()
            rows.append(row)
        print(json.dumps(rows, indent=2))
        return 0
    rows = [
        [row["label"], row["kind"], row["N"], row["answer"], row["via"]]
        for row in answers.table()
    ]
    print(
        f"Queries: {len(answers)} answered through the engine "
        f"({answers.cache_hits} cache hits)"
    )
    _print_table(["query", "kind", "N", "answer", "via"], rows)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived query daemon (see :mod:`repro.serve`)."""
    from repro.serve import ServiceConfig, serve_forever

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        shard_timeout=args.timeout,
        retries=args.retries,
        on_shard_failure=args.on_shard_failure,
        cache_size=args.cache_size,
        trace_path=args.trace,
    )
    serve_forever(config)
    return 0


def _cmd_report(_args: argparse.Namespace) -> int:
    from repro.report import evaluate_claims, full_report

    print(full_report())
    return 0 if all(c.matches for c in evaluate_claims()) else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static determinism/concurrency contract check (repro.contracts).

    Exit status 0 means no *new* findings (baselined debt is reported but
    not fatal), so the command is directly usable as a pre-commit hook.
    """
    import pathlib

    from repro.contracts import (
        lint_paths,
        registered_rules,
        render_json,
        render_sarif,
        render_text,
        save_baseline,
    )

    known_rules = registered_rules()
    if args.explain is not None:
        if args.explain == "list":
            for rule_id in sorted(known_rules):
                print(f"{rule_id} — {known_rules[rule_id].summary}")
            return 0
        rule = known_rules.get(args.explain)
        if rule is None:
            print(
                f"unknown rule {args.explain!r}; "
                f"rules: {', '.join(sorted(known_rules))}",
                file=sys.stderr,
            )
            return 2
        print(rule.explain())
        return 0

    rules = None
    if args.rules is not None:
        rules = [rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()]
        unknown = sorted(set(rules) - set(known_rules))
        if unknown:
            print(
                f"unknown rule(s) {', '.join(repr(r) for r in unknown)}; "
                f"rules: {', '.join(sorted(known_rules))}",
                file=sys.stderr,
            )
            return 2

    if args.paths:
        paths = [pathlib.Path(p) for p in args.paths]
    else:
        # Default scope: the installed package itself, wherever it lives.
        paths = [pathlib.Path(__file__).resolve().parent]
    result = lint_paths(paths, rules=rules, baseline=args.baseline)
    if args.write_baseline is not None:
        save_baseline(result.findings, args.write_baseline)
        print(
            f"wrote {len(result.findings)} finding(s) to {args.write_baseline}; "
            "justify each entry in review"
        )
        return 0
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(render_json(result))
    elif fmt == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Probabilistic consensus reliability analysis (HotOS '25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="full paper-vs-measured reproduction report")
    report.set_defaults(func=_cmd_report)

    lint = sub.add_parser(
        "lint",
        help="static determinism & concurrency contract check "
        "(AST-level; exits non-zero on new findings)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format: human text, versioned JSON, or SARIF 2.1.0 "
        "for CI/editor ingestion (default: text)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json (kept for compatibility)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="committed baseline of known findings; only NEW findings fail",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write current findings as a new baseline file and exit 0",
    )
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all); an unknown "
        "id exits 2 listing every valid rule",
    )
    lint.add_argument(
        "--explain",
        metavar="RULE-ID",
        default=None,
        help="print a rule's rationale and a minimal bad/good example; "
        "`--explain list` enumerates every rule id",
    )
    lint.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined findings in the text report",
    )
    lint.set_defaults(func=_cmd_lint)

    raft = sub.add_parser("raft", help="analyze one Raft deployment")
    raft.add_argument("--n", type=int, required=True, help="cluster size")
    raft.add_argument("--p", type=float, required=True, help="per-node failure probability")
    raft.add_argument("--q-per", type=int, default=None, help="persistence quorum size")
    raft.add_argument("--q-vc", type=int, default=None, help="view-change quorum size")
    _add_jobs_flag(raft)
    raft.set_defaults(func=_cmd_raft)

    pbft = sub.add_parser("pbft", help="analyze one PBFT deployment (worst-case Byzantine)")
    pbft.add_argument("--n", type=int, required=True, help="cluster size")
    pbft.add_argument("--p", type=float, required=True, help="per-node failure probability")
    _add_jobs_flag(pbft)
    pbft.set_defaults(func=_cmd_pbft)

    table1 = sub.add_parser("table1", help="reproduce the paper's Table 1")
    table1.set_defaults(func=_cmd_table1)

    table2 = sub.add_parser("table2", help="reproduce the paper's Table 2")
    table2.set_defaults(func=_cmd_table2)

    plan = sub.add_parser("plan", help="cheapest deployment meeting a nines target")
    plan.add_argument("--target-nines", type=float, required=True)
    plan.add_argument("--max-size", type=int, default=15)
    plan.set_defaults(func=_cmd_plan)

    sweep = sub.add_parser(
        "sweep", help="batched what-if sweep over failure probabilities"
    )
    sweep.add_argument("--n", type=int, required=True, help="cluster size")
    sweep.add_argument(
        "--p",
        type=str,
        required=True,
        help="comma-separated per-node failure probabilities to sweep",
    )
    sweep.add_argument(
        "--protocol",
        choices=("raft", "pbft"),
        default="raft",
        help="protocol family (pbft uses the worst-case Byzantine fleet)",
    )
    _add_jobs_flag(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    scenarios = sub.add_parser(
        "scenarios", help="run a JSON scenario file through the reliability engine"
    )
    scenarios.add_argument("file", help="path to a scenario JSON file")
    scenarios.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON results"
    )
    _add_jobs_flag(scenarios)
    scenarios.set_defaults(func=_cmd_scenarios)

    sensitivity = sub.add_parser(
        "sensitivity", help="rank nodes by Birnbaum importance (liveness)"
    )
    sensitivity.add_argument("--n", type=int, required=True)
    sensitivity.add_argument(
        "--p",
        type=str,
        required=True,
        help="per-node failure probabilities, comma-separated (or one value for all)",
    )
    sensitivity.set_defaults(func=_cmd_sensitivity)

    committee = sub.add_parser(
        "committee", help="smallest sampled committee meeting a nines target"
    )
    committee.add_argument("--n", type=int, required=True, help="node pool size")
    committee.add_argument("--p", type=float, required=True)
    committee.add_argument("--target-nines", type=float, required=True)
    committee.set_defaults(func=_cmd_committee)

    mttf = sub.add_parser("mttf", help="storage-style Markov metrics for a cluster")
    mttf.add_argument("--n", type=int, required=True)
    mttf.add_argument("--afr", type=float, required=True, help="per-node annual failure rate")
    mttf.add_argument("--mttr-hours", type=float, default=24.0)
    mttf.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON metrics"
    )
    mttf.set_defaults(func=_cmd_mttf)

    query = sub.add_parser(
        "query",
        help="run a mixed JSON query file (reliability/availability/mttf/"
        "simulation; simulation rows may embed fault plans)",
    )
    query.add_argument("file", help="path to a query JSON file")
    query.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON answers"
    )
    _add_jobs_flag(query)
    query.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-shard wall-clock timeout in seconds for campaign shards",
    )
    query.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-execution budget per failed campaign shard "
        "(retries are bit-identical; answers never change)",
    )
    query.add_argument(
        "--on-shard-failure",
        choices=("raise", "degrade"),
        default="raise",
        help="what to do when a shard exhausts its retries: fail the run "
        "(default) or keep a partial answer with degraded provenance",
    )
    query.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="checkpoint directory: journal completed campaign shards there "
        "and resume interrupted campaigns from it (bit-identical)",
    )
    query.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record a span trace of the run: Chrome trace-event JSON "
        "(open in Perfetto / chrome://tracing), or a JSONL span log when "
        "FILE ends in .jsonl; answers are bit-identical with tracing on",
    )
    query.set_defaults(func=_cmd_query)

    serve = sub.add_parser(
        "serve",
        help="serve queries over HTTP from one warm engine "
        "(POST /v1/query, GET /healthz, GET /metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker threads per campaign fan-out (default: 1; -1 = one per "
        "CPU; values never depend on the worker count)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="journal completed campaign shards here so a daemon restart "
        "resumes interrupted campaigns bit-identically",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-shard wall-clock timeout in seconds for campaign shards",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-execution budget per failed campaign shard "
        "(retries are bit-identical; answers never change)",
    )
    serve.add_argument(
        "--on-shard-failure",
        choices=("raise", "degrade"),
        default="degrade",
        help="what to do when a shard exhausts its retries: keep a partial "
        "answer with degraded provenance (default) or fail the query",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="engine memo capacity shared across all requests",
    )
    serve.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record per-request/query/shard spans and write the trace on "
        "shutdown: Chrome trace-event JSON, or JSONL when FILE ends in "
        ".jsonl; answers are bit-identical with tracing on",
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
