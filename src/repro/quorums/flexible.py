"""Grid and flexible quorum constructions (Flexible Paxos, paper §4).

Two non-threshold families used to explore the quorum design space:

* :class:`GridQuorums` — arrange ``rows × cols`` nodes in a grid; a quorum
  is a full row plus a full column (O(√N) quorum size with guaranteed
  intersection), the classic sub-linear construction.
* :class:`FlexibleQuorumPair` — a (Q_per, Q_vc) threshold pair satisfying
  only the cross-intersection ``q_per + q_vc > n`` required by Flexible
  Paxos, enabling the small-commit-quorum/large-election-quorum trade-off
  the paper's §4 contemplates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterator

from repro.errors import InvalidConfigurationError
from repro.quorums.majority import ThresholdQuorums
from repro.quorums.system import QuorumSystem


class GridQuorums(QuorumSystem):
    """Row-plus-column quorums over a ``rows × cols`` grid.

    Node ``i`` sits at ``(i // cols, i % cols)``.  Any two quorums
    intersect: quorum A's row crosses quorum B's column.
    """

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise InvalidConfigurationError(f"grid dimensions must be positive, got {rows}x{cols}")
        super().__init__(rows * cols)
        self.rows = rows
        self.cols = cols

    def row_members(self, row: int) -> frozenset[int]:
        return frozenset(row * self.cols + c for c in range(self.cols))

    def col_members(self, col: int) -> frozenset[int]:
        return frozenset(r * self.cols + col for r in range(self.rows))

    def is_quorum(self, nodes: FrozenSet[int]) -> bool:
        node_set = self.validate_universe(nodes)
        has_row = any(self.row_members(r) <= node_set for r in range(self.rows))
        has_col = any(self.col_members(c) <= node_set for c in range(self.cols))
        return has_row and has_col

    def minimal_quorums(self) -> Iterator[FrozenSet[int]]:
        seen: set[frozenset[int]] = set()
        for r, c in itertools.product(range(self.rows), range(self.cols)):
            quorum = self.row_members(r) | self.col_members(c)
            if quorum not in seen:
                seen.add(quorum)
                yield quorum

    def __repr__(self) -> str:
        return f"GridQuorums({self.rows}x{self.cols})"


@dataclass(frozen=True)
class FlexibleQuorumPair:
    """A Flexible-Paxos style (persistence, view-change) threshold pair.

    Validity requires only the *cross* intersection ``q_per + q_vc > n``;
    persistence quorums need not intersect each other.  This is the design
    space the paper's "quorum sizes chosen dynamically" idea explores.
    """

    n: int
    q_per: int
    q_vc: int

    def __post_init__(self) -> None:
        if not 1 <= self.q_per <= self.n or not 1 <= self.q_vc <= self.n:
            raise InvalidConfigurationError(
                f"quorum sizes ({self.q_per}, {self.q_vc}) outside [1, {self.n}]"
            )

    @property
    def is_safe_configuration(self) -> bool:
        """Thm 3.2 structural safety for this pair."""
        return self.n < self.q_per + self.q_vc and self.n < 2 * self.q_vc

    @property
    def persistence(self) -> ThresholdQuorums:
        return ThresholdQuorums(self.n, self.q_per)

    @property
    def view_change(self) -> ThresholdQuorums:
        return ThresholdQuorums(self.n, self.q_vc)

    def liveness_probability(self, failure_probabilities: tuple[float, ...]) -> float:
        """P(both quorums formable from correct nodes) = availability of the larger."""
        larger = self.persistence if self.q_per >= self.q_vc else self.view_change
        return larger.availability(list(failure_probabilities))

    def all_valid_pairs(n: int) -> Iterator["FlexibleQuorumPair"]:  # noqa: N805 - factory
        """Enumerate every structurally safe (q_per, q_vc) pair for size ``n``."""
        for q_vc in range(n // 2 + 1, n + 1):
            for q_per in range(n - q_vc + 1, n + 1):
                pair = FlexibleQuorumPair(n, q_per, q_vc)
                if pair.is_safe_configuration:
                    yield pair

    all_valid_pairs = staticmethod(all_valid_pairs)
