"""Committee sampling (paper §4 third step, §5 King–Saia / Algorand).

When fleet reliability exceeds application requirements, run consensus on a
sampled committee instead of the full cluster.  This module quantifies the
two failure modes of a sampled committee:

* it may contain *no* correct node (kills both safety and liveness), and
* its faulty fraction may exceed the protocol threshold (e.g. ≥ 1/3 for a
  BFT committee).

Both are computed exactly — binomial for iid node failures, hypergeometric
for a fixed number of faulty nodes in the parent cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

from repro._rng import SeedLike, as_generator
from repro.errors import InvalidConfigurationError


def prob_committee_all_faulty(p_fail: float, committee_size: int) -> float:
    """P(a sampled committee of distinct nodes is entirely faulty), iid failures.

    The §3 example: N=100, p=1%, k=5 → 1e-10, i.e. "ten nines that a random
    quorum of five includes at least one correct node".
    """
    if not 0.0 <= p_fail <= 1.0:
        raise InvalidConfigurationError("p_fail must lie in [0, 1]")
    if committee_size <= 0:
        raise InvalidConfigurationError("committee size must be positive")
    return p_fail**committee_size


def prob_committee_contains_correct(p_fail: float, committee_size: int) -> float:
    """Complement of :func:`prob_committee_all_faulty`."""
    return 1.0 - prob_committee_all_faulty(p_fail, committee_size)


def committee_faulty_count_pmf(n: int, n_faulty: int, committee_size: int) -> list[float]:
    """PMF of the number of faulty members when sampling from a fixed cluster.

    Hypergeometric: the cluster has ``n_faulty`` faulty nodes out of ``n``;
    the committee is a uniform ``committee_size``-subset.
    """
    if not 0 <= n_faulty <= n:
        raise InvalidConfigurationError(f"n_faulty={n_faulty} outside [0, {n}]")
    if not 0 < committee_size <= n:
        raise InvalidConfigurationError(f"committee_size={committee_size} outside (0, {n}]")
    rv = stats.hypergeom(n, n_faulty, committee_size)
    return [float(rv.pmf(j)) for j in range(committee_size + 1)]


def prob_committee_fraction_safe(
    n: int, n_faulty: int, committee_size: int, max_faulty_fraction: float = 1.0 / 3.0
) -> float:
    """P(committee faulty fraction stays below the protocol threshold)."""
    if not 0.0 < max_faulty_fraction <= 1.0:
        raise InvalidConfigurationError("max_faulty_fraction must be in (0, 1]")
    limit = math.ceil(max_faulty_fraction * committee_size) - 1
    pmf = committee_faulty_count_pmf(n, n_faulty, committee_size)
    return float(sum(pmf[: limit + 1]))


def required_committee_size(p_fail: float, target_nines: float) -> int:
    """Smallest committee guaranteeing ≥1 correct member with the target nines.

    Closed form: ``k = ceil(target_nines / -log10(p_fail))``.
    """
    if not 0.0 < p_fail < 1.0:
        raise InvalidConfigurationError("p_fail must lie in (0, 1)")
    if target_nines <= 0:
        raise InvalidConfigurationError("target_nines must be positive")
    per_node_nines = -math.log10(p_fail)
    return max(1, math.ceil(target_nines / per_node_nines))


@dataclass(frozen=True)
class CommitteeReliability:
    """Reliability of running a threshold protocol on a sampled committee."""

    n: int
    committee_size: int
    p_fail: float
    max_faulty_fraction: float

    def probability_committee_ok(self) -> float:
        """P(sampled committee's faulty fraction is below threshold), iid.

        With iid failures, sampling distinct nodes keeps member failures
        iid, so the faulty count is Binomial(committee_size, p_fail).
        """
        limit = math.ceil(self.max_faulty_fraction * self.committee_size) - 1
        return float(stats.binom.cdf(limit, self.committee_size, self.p_fail))

    def expected_committee_faulty(self) -> float:
        return self.committee_size * self.p_fail


def smallest_bft_committee(p_fail: float, target_nines: float, *, max_size: int = 2_000) -> int:
    """Smallest committee whose faulty fraction stays < 1/3 with target nines.

    Scans sizes (stepping by 3 keeps the threshold boundary aligned) until
    the binomial tail clears the target; raises when no size up to
    ``max_size`` suffices — reliability of the node pool is then the binding
    constraint, not committee size.
    """
    if not 0.0 < p_fail < 1.0:
        raise InvalidConfigurationError("p_fail must lie in (0, 1)")
    target = 1.0 - 10.0 ** (-target_nines)
    for size in range(1, max_size + 1):
        limit = math.ceil(size / 3.0) - 1
        if float(stats.binom.cdf(limit, size, p_fail)) >= target:
            return size
    raise InvalidConfigurationError(
        f"no committee up to {max_size} meets {target_nines} nines at p={p_fail}"
    )


def sample_committee(n: int, committee_size: int, seed: SeedLike = None) -> frozenset[int]:
    """Uniformly sample a committee of distinct node indices."""
    if not 0 < committee_size <= n:
        raise InvalidConfigurationError(f"committee_size={committee_size} outside (0, {n}]")
    rng = as_generator(seed)
    return frozenset(int(i) for i in rng.choice(n, size=committee_size, replace=False))
