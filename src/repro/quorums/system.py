"""Quorum-system abstraction (paper §3.1, §5 "Quorum Systems").

A quorum system over nodes ``0..n-1`` is a monotone family of subsets.
Implementations provide membership testing (:meth:`is_quorum`) and, where
tractable, enumeration of *minimal* quorums.  On top of those primitives
this module derives the classic measures from Naor–Wool and the
probabilistic quantities the paper's analysis needs:

* **availability** — probability a fully-correct quorum exists, given
  per-node failure probabilities;
* **intersection with correctness** — probability every pair of quorums
  (possibly across two systems) shares at least one correct node, which is
  precisely the safety currency of consensus (§3.1).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, Iterator, Sequence

from repro.errors import InvalidConfigurationError

#: Enumeration guard: refuse to materialise more minimal quorums than this.
MAX_ENUMERATED_QUORUMS = 200_000


class QuorumSystem(ABC):
    """Monotone family of node subsets over a fixed universe ``0..n-1``."""

    def __init__(self, n: int):
        if n <= 0:
            raise InvalidConfigurationError(f"universe size must be positive, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        """Universe size."""
        return self._n

    @abstractmethod
    def is_quorum(self, nodes: FrozenSet[int]) -> bool:
        """True when ``nodes`` contains a quorum (monotone membership)."""

    @abstractmethod
    def minimal_quorums(self) -> Iterator[FrozenSet[int]]:
        """Yield every inclusion-minimal quorum (guarded by enumeration caps)."""

    # ------------------------------------------------------------------
    # Derived predicates
    # ------------------------------------------------------------------
    def is_available(self, correct: FrozenSet[int]) -> bool:
        """True when some quorum consists entirely of ``correct`` nodes.

        By monotonicity this is just membership of the correct set itself.
        """
        return self.is_quorum(frozenset(correct))

    def min_quorum_cardinality(self) -> int:
        """Size of the smallest quorum."""
        return min(len(q) for q in self.minimal_quorums())

    def validate_universe(self, nodes: Iterable[int]) -> frozenset[int]:
        """Check node indices and return them as a frozenset."""
        node_set = frozenset(nodes)
        if any(not 0 <= i < self._n for i in node_set):
            raise InvalidConfigurationError(f"node indices must lie in [0, {self._n})")
        return node_set

    # ------------------------------------------------------------------
    # Probabilistic measures
    # ------------------------------------------------------------------
    def availability(self, failure_probabilities: Sequence[float]) -> float:
        """P(a fully-correct quorum exists) under independent failures.

        Generic implementation enumerates all ``2^n`` correctness patterns;
        threshold-style subclasses override with closed forms.
        """
        self._check_probabilities(failure_probabilities)
        if self._n > 22:
            raise InvalidConfigurationError(
                f"generic availability enumeration infeasible for n={self._n}; "
                "use a threshold system or Monte-Carlo"
            )
        total = 0.0
        for pattern in itertools.product((False, True), repeat=self._n):
            probability = 1.0
            for failed, p in zip(pattern, failure_probabilities):
                probability *= p if failed else 1.0 - p
            if probability == 0.0:
                continue
            correct = frozenset(i for i, failed in enumerate(pattern) if not failed)
            if self.is_available(correct):
                total += probability
        return min(total, 1.0)

    def pairwise_intersection_holds(
        self, other: "QuorumSystem", correct: FrozenSet[int]
    ) -> bool:
        """True when every quorum pair across systems meets in a correct node.

        This is the §3.1 safety invariant specialised to a failure
        configuration: e.g. persistence × view-change intersection for Raft.
        """
        if other.n != self._n:
            raise InvalidConfigurationError("quorum systems must share a universe")
        mine = list(_capped(self.minimal_quorums()))
        theirs = list(_capped(other.minimal_quorums()))
        return all(
            (q1 & q2 & correct) for q1 in mine for q2 in theirs
        )

    def self_intersection_holds(self, correct: FrozenSet[int]) -> bool:
        """Every pair of this system's quorums meets in a correct node."""
        return self.pairwise_intersection_holds(self, correct)

    # ------------------------------------------------------------------
    # Naor–Wool style load measure
    # ------------------------------------------------------------------
    def best_case_load(self) -> float:
        """Lower-bound load: pick one minimal quorum per access uniformly.

        Returns the max per-node access frequency of the uniform strategy
        over minimal quorums — the simple upper bound on system load used
        for comparing quorum families (not the LP-optimal value).
        """
        quorums = list(_capped(self.minimal_quorums()))
        if not quorums:
            raise InvalidConfigurationError("quorum system has no quorums")
        counts = [0] * self._n
        for quorum in quorums:
            for node in quorum:
                counts[node] += 1
        return max(counts) / len(quorums)

    def _check_probabilities(self, probabilities: Sequence[float]) -> None:
        if len(probabilities) != self._n:
            raise InvalidConfigurationError(
                f"expected {self._n} probabilities, got {len(probabilities)}"
            )
        if any(not 0.0 <= p <= 1.0 for p in probabilities):
            raise InvalidConfigurationError("failure probabilities must lie in [0, 1]")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self._n})"


def _capped(quorums: Iterator[FrozenSet[int]], cap: int = MAX_ENUMERATED_QUORUMS) -> Iterator[FrozenSet[int]]:
    for count, quorum in enumerate(quorums):
        if count >= cap:
            raise InvalidConfigurationError(
                f"quorum enumeration exceeded cap of {cap}; system too large"
            )
        yield quorum
