"""Weighted-vote quorum systems (paper §2: stake, trust, heterogeneity).

Nodes carry non-negative weights (stake, trust scores, reliability-derived
votes); a set is a quorum when its weight clears a threshold.  Two weighted
systems with thresholds ``t1 + t2 > total_weight`` are guaranteed to
intersect — the weighted generalisation of majority intersection, and the
mechanism stake-based protocols (§5) use.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterator, Sequence

from repro.errors import InvalidConfigurationError
from repro.quorums.system import QuorumSystem


class WeightedQuorums(QuorumSystem):
    """Sets whose total weight is at least ``threshold``."""

    def __init__(self, weights: Sequence[float], threshold: float):
        super().__init__(len(weights))
        if any(w < 0 for w in weights):
            raise InvalidConfigurationError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise InvalidConfigurationError("total weight must be positive")
        if not 0 < threshold <= total:
            raise InvalidConfigurationError(
                f"threshold {threshold} outside (0, {total}]"
            )
        self.weights = tuple(float(w) for w in weights)
        self.threshold = float(threshold)

    @classmethod
    def majority_of_weight(cls, weights: Sequence[float]) -> "WeightedQuorums":
        """Strict weighted majority: threshold just over half the total."""
        total = float(sum(weights))
        # Any weight strictly greater than total/2 guarantees intersection;
        # use the midpoint plus the smallest representable step.
        import math

        threshold = math.nextafter(total / 2.0, total)
        return cls(weights, threshold)

    def weight_of(self, nodes: FrozenSet[int]) -> float:
        return sum(self.weights[i] for i in nodes)

    def is_quorum(self, nodes: FrozenSet[int]) -> bool:
        return self.weight_of(self.validate_universe(nodes)) >= self.threshold

    def minimal_quorums(self) -> Iterator[FrozenSet[int]]:
        """Enumerate inclusion-minimal sets clearing the threshold.

        Exponential in ``n``; intended for the small universes where
        weighted analysis is exact (tests cap at n ≈ 16).
        """
        if self.n > 20:
            raise InvalidConfigurationError(
                f"minimal-quorum enumeration infeasible for n={self.n}"
            )
        seen_minimal: list[frozenset[int]] = []
        for size in range(1, self.n + 1):
            for combo in itertools.combinations(range(self.n), size):
                candidate = frozenset(combo)
                if self.weight_of(candidate) < self.threshold:
                    continue
                if any(known <= candidate for known in seen_minimal):
                    continue
                seen_minimal.append(candidate)
                yield candidate

    def guaranteed_intersection_with(self, other: "WeightedQuorums") -> bool:
        """True when every quorum pair across the systems must overlap."""
        if other.n != self.n or other.weights != self.weights:
            raise InvalidConfigurationError(
                "weighted intersection requires identical weight vectors"
            )
        total = sum(self.weights)
        return self.threshold + other.threshold > total

    def __repr__(self) -> str:
        return f"WeightedQuorums(n={self.n}, threshold={self.threshold})"


def reliability_weights(failure_probabilities: Sequence[float]) -> tuple[float, ...]:
    """Weights proportional to log-reliability, the natural fault-curve vote.

    A node with failure probability ``p`` gets weight ``-log(p)`` (clamped),
    so that a quorum's weight tracks the log of the probability that *all*
    its members fail simultaneously — aligning weighted thresholds with
    durability targets.
    """
    import math

    weights = []
    for p in failure_probabilities:
        if not 0.0 <= p <= 1.0:
            raise InvalidConfigurationError("failure probabilities must lie in [0, 1]")
        clamped = min(max(p, 1e-12), 1.0 - 1e-12)
        weights.append(-math.log(clamped))
    return tuple(weights)
