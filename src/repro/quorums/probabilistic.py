"""Probabilistic quorums — O(√N) quorums intersecting w.h.p. (paper §4, §5).

Malkhi–Reiter–Wright probabilistic quorum systems give up *guaranteed*
intersection: quorums are uniform ``k``-subsets, and two independently
sampled quorums overlap only with high probability.  The paper argues this
is exactly the right trade once guarantees are probabilistic anyway.  This
module computes the relevant exact probabilities (hypergeometric overlap,
overlap-in-a-correct-node) and sizes quorums to meet nines targets.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterator

from scipy import stats

from repro._rng import SeedLike, as_generator
from repro.errors import InvalidConfigurationError
from repro.quorums.system import QuorumSystem


class ProbabilisticQuorums(QuorumSystem):
    """Uniform ``k``-subset quorums (no deterministic intersection).

    ``is_quorum`` accepts any superset of a ``k``-subset, i.e. any set of
    at least ``k`` nodes — the *access* rule.  The probabilistic value is
    in the sampling/overlap analysis, not membership.
    """

    def __init__(self, n: int, k: int):
        super().__init__(n)
        if not 1 <= k <= n:
            raise InvalidConfigurationError(f"quorum size k={k} outside [1, {n}]")
        self.k = k

    @classmethod
    def sqrt_sized(cls, n: int, multiplier: float = 1.0) -> "ProbabilisticQuorums":
        """The classic ``k = ⌈multiplier · √n⌉`` construction."""
        if multiplier <= 0:
            raise InvalidConfigurationError("multiplier must be positive")
        return cls(n, min(n, max(1, math.ceil(multiplier * math.sqrt(n)))))

    def is_quorum(self, nodes: FrozenSet[int]) -> bool:
        return len(self.validate_universe(nodes)) >= self.k

    def minimal_quorums(self) -> Iterator[FrozenSet[int]]:
        import itertools

        for combo in itertools.combinations(range(self.n), self.k):
            yield frozenset(combo)

    def sample_quorum(self, seed: SeedLike = None) -> frozenset[int]:
        """Draw one uniform ``k``-subset."""
        rng = as_generator(seed)
        return frozenset(int(i) for i in rng.choice(self.n, size=self.k, replace=False))

    # ------------------------------------------------------------------
    # Exact overlap probabilities
    # ------------------------------------------------------------------
    def overlap_pmf(self) -> list[float]:
        """PMF of |Q1 ∩ Q2| for two independent uniform quorums (hypergeometric)."""
        rv = stats.hypergeom(self.n, self.k, self.k)
        return [float(rv.pmf(m)) for m in range(self.k + 1)]

    def intersection_probability(self) -> float:
        """P(two independent quorums share at least one node)."""
        rv = stats.hypergeom(self.n, self.k, self.k)
        return float(1.0 - rv.pmf(0))

    def intersection_in_correct_probability(self, p_fail: float) -> float:
        """P(two quorums share ≥1 *correct* node), iid node failures.

        Conditions on the overlap size ``m`` (hypergeometric) and applies
        ``1 - p_fail^m`` — exactly the quantity §4 says Chernoff bounds
        cannot deliver because quorum draws are dependent through overlap.
        """
        if not 0.0 <= p_fail <= 1.0:
            raise InvalidConfigurationError("p_fail must be in [0, 1]")
        total = 0.0
        for m, mass in enumerate(self.overlap_pmf()):
            if m == 0 or mass == 0.0:
                continue
            total += mass * (1.0 - p_fail**m)
        return total

    def contains_correct_probability(self, p_fail: float) -> float:
        """P(a sampled quorum contains ≥1 correct node) = 1 - p^k (iid)."""
        if not 0.0 <= p_fail <= 1.0:
            raise InvalidConfigurationError("p_fail must be in [0, 1]")
        return 1.0 - p_fail**self.k

    def __repr__(self) -> str:
        return f"ProbabilisticQuorums(n={self.n}, k={self.k})"


def minimum_quorum_size_for_intersection(n: int, target_nines: float) -> int:
    """Smallest ``k`` such that two uniform ``k``-quorums overlap with the target nines."""
    if target_nines <= 0:
        raise InvalidConfigurationError("target_nines must be positive")
    target = 1.0 - 10.0 ** (-target_nines)
    for k in range(1, n + 1):
        if ProbabilisticQuorums(n, k).intersection_probability() >= target:
            return k
    return n


def minimum_quorum_size_for_correct_intersection(
    n: int, p_fail: float, target_nines: float
) -> int:
    """Smallest ``k`` whose pairwise *correct-node* overlap meets the nines target."""
    if target_nines <= 0:
        raise InvalidConfigurationError("target_nines must be positive")
    target = 1.0 - 10.0 ** (-target_nines)
    for k in range(1, n + 1):
        if ProbabilisticQuorums(n, k).intersection_in_correct_probability(p_fail) >= target:
            return k
    return n
