"""Threshold (cardinality) quorum systems — majorities and generalisations.

The workhorse of deployed consensus: a set is a quorum iff it contains at
least ``k`` nodes.  Strict majorities (``k = ⌊n/2⌋ + 1``) give the
classical guaranteed pairwise intersection; other thresholds realise the
flexible trade-offs of §3.2/§4.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterator, Sequence

from repro.analysis.counting import poisson_binomial_pmf
from repro.errors import InvalidConfigurationError
from repro.quorums.system import QuorumSystem


class ThresholdQuorums(QuorumSystem):
    """All subsets of cardinality at least ``k``."""

    def __init__(self, n: int, k: int):
        super().__init__(n)
        if not 1 <= k <= n:
            raise InvalidConfigurationError(f"threshold k={k} outside [1, {n}]")
        self.k = k

    def is_quorum(self, nodes: FrozenSet[int]) -> bool:
        return len(self.validate_universe(nodes)) >= self.k

    def minimal_quorums(self) -> Iterator[FrozenSet[int]]:
        for combo in itertools.combinations(range(self.n), self.k):
            yield frozenset(combo)

    def min_quorum_cardinality(self) -> int:
        return self.k

    def availability(self, failure_probabilities: Sequence[float]) -> float:
        """Closed form: P(#correct >= k) via the Poisson-binomial PMF."""
        self._check_probabilities(failure_probabilities)
        correct_probs = [1.0 - p for p in failure_probabilities]
        pmf = poisson_binomial_pmf(correct_probs)
        return float(pmf[self.k :].sum())

    def intersects_with(self, other: "ThresholdQuorums") -> bool:
        """Guaranteed intersection: every quorum pair overlaps iff k1+k2 > n."""
        if other.n != self.n:
            raise InvalidConfigurationError("quorum systems must share a universe")
        return self.k + other.k > self.n

    def __repr__(self) -> str:
        return f"ThresholdQuorums(n={self.n}, k={self.k})"


class MajorityQuorums(ThresholdQuorums):
    """Strict-majority quorums, the Raft/Paxos default."""

    def __init__(self, n: int):
        super().__init__(n, n // 2 + 1)

    def __repr__(self) -> str:
        return f"MajorityQuorums(n={self.n})"
