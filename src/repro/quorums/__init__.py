"""Quorum systems and their probabilistic measures (paper §3.1, §4, §5).

Construction families: threshold/majority, weighted (stake/trust), grid,
flexible pairs, probabilistic O(√N) quorums and sampled committees —
together with exact intersection/availability probability computations.
"""

from repro.quorums.committee import (
    CommitteeReliability,
    committee_faulty_count_pmf,
    prob_committee_all_faulty,
    prob_committee_contains_correct,
    prob_committee_fraction_safe,
    required_committee_size,
    sample_committee,
    smallest_bft_committee,
)
from repro.quorums.flexible import FlexibleQuorumPair, GridQuorums
from repro.quorums.intersection import (
    enumerate_threshold_pair_property,
    prob_failure_count_reaches,
    prob_fixed_quorum_wiped_out,
    prob_random_quorums_overlap,
    prob_random_quorums_overlap_in_correct,
    prob_threshold_pair_intersects_in_correct,
)
from repro.quorums.majority import MajorityQuorums, ThresholdQuorums
from repro.quorums.probabilistic import (
    ProbabilisticQuorums,
    minimum_quorum_size_for_correct_intersection,
    minimum_quorum_size_for_intersection,
)
from repro.quorums.system import QuorumSystem
from repro.quorums.tree import TreeQuorums
from repro.quorums.weighted import WeightedQuorums, reliability_weights

__all__ = [
    "QuorumSystem",
    "MajorityQuorums",
    "ThresholdQuorums",
    "WeightedQuorums",
    "reliability_weights",
    "GridQuorums",
    "TreeQuorums",
    "FlexibleQuorumPair",
    "ProbabilisticQuorums",
    "minimum_quorum_size_for_intersection",
    "minimum_quorum_size_for_correct_intersection",
    "CommitteeReliability",
    "prob_committee_all_faulty",
    "prob_committee_contains_correct",
    "prob_committee_fraction_safe",
    "committee_faulty_count_pmf",
    "required_committee_size",
    "smallest_bft_committee",
    "sample_committee",
    "prob_random_quorums_overlap",
    "prob_random_quorums_overlap_in_correct",
    "prob_fixed_quorum_wiped_out",
    "prob_failure_count_reaches",
    "prob_threshold_pair_intersects_in_correct",
    "enumerate_threshold_pair_property",
]
