"""Quorum-intersection probability calculations (paper §4).

The paper highlights that computing intersection probabilities is the
technically hard part of probability-native consensus: "quorums are not
formed independently, but instead must intersect ... traditional tools like
Chernoff bounds no longer apply."  This module collects the exact
computations that *are* available:

* hypergeometric overlap of sampled quorums (dependence handled by
  conditioning on overlap size);
* probability that window failures wipe out a fixed quorum (the §4
  ten-billion-to-one example);
* probability that every pair of threshold quorums keeps a correct node in
  common for heterogeneous fleets.
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence

from scipy import stats

from repro.analysis.counting import poisson_binomial_pmf
from repro.errors import InvalidConfigurationError


def prob_random_quorums_overlap(n: int, k1: int, k2: int) -> float:
    """P(two independent uniform subsets of sizes k1, k2 share a node)."""
    _check_sizes(n, k1, k2)
    rv = stats.hypergeom(n, k1, k2)
    return float(1.0 - rv.pmf(0))


def prob_random_quorums_overlap_in_correct(n: int, k1: int, k2: int, p_fail: float) -> float:
    """P(two uniform subsets share ≥1 *correct* node), iid failures.

    Conditions on overlap size (hypergeometric) then applies
    ``1 - p_fail^m``.  This generalises the same-size computation in
    :mod:`repro.quorums.probabilistic` to asymmetric quorum sizes
    (persistence vs view-change).
    """
    _check_sizes(n, k1, k2)
    _check_probability(p_fail)
    rv = stats.hypergeom(n, k1, k2)
    total = 0.0
    for m in range(1, min(k1, k2) + 1):
        mass = float(rv.pmf(m))
        if mass > 0.0:
            total += mass * (1.0 - p_fail**m)
    return total


def prob_fixed_quorum_wiped_out(quorum_failure_probs: Sequence[float]) -> float:
    """P(every member of a *fixed* quorum fails) = Π p_u.

    The §4 example: |Q_per| = 10 at p = 10% → 1e-10.
    """
    for p in quorum_failure_probs:
        _check_probability(p)
    return math.prod(quorum_failure_probs)


def prob_failure_count_reaches(n: int, p_fail: float, threshold: int) -> float:
    """P(at least ``threshold`` of ``n`` iid nodes fail) — binomial tail.

    The other half of the §4 example: N=100, p=10% → P(≥10 failures) ≈ 50%.
    """
    _check_probability(p_fail)
    if threshold <= 0:
        return 1.0
    if threshold > n:
        return 0.0
    return float(stats.binom.sf(threshold - 1, n, p_fail))


def prob_threshold_pair_intersects_in_correct(
    failure_probs: Sequence[float], k1: int, k2: int, *, exact_limit: int = 20
) -> float:
    """P(every k1-quorum × k2-quorum pair shares a correct node), heterogeneous.

    For threshold systems the worst pair is the one packing failures
    densest, so the predicate reduces to: every pair of subsets of sizes
    k1, k2 drawn from the *correct+failed* pool intersects in a correct
    node iff  (n - #failed_acting_nodes...).  Concretely, a violating pair
    exists iff one can pick k1 + k2 nodes (with overlap allowed only on
    failed nodes) such that the overlap contains no correct node — which
    for thresholds happens iff ``k1 + k2 - n`` ≤ #failed in the overlap
    region; the exact criterion is that the number of *correct* nodes is at
    most ``k1 + k2 - n - 1``... — rather than reason informally we
    enumerate for small ``n`` and use the count criterion for thresholds:

        every pair intersects in a correct node
        ⟺  #correct > n - (k1 + k2 - n) ... simplified below.

    Derivation: choose quorums Q1, Q2 minimising correct overlap.  The
    overlap can be made as small as ``k1 + k2 - n`` nodes, and the
    adversary fills it with failed nodes first; a correct node is forced
    into *every* overlap iff  #failed < k1 + k2 - n  is false... i.e. the
    pair property holds iff ``#failed ≤ k1 + k2 - n - 1``.  We therefore
    return ``P(#failed < k1 + k2 - n)`` via the Poisson-binomial PMF, and
    cross-check by enumeration when ``n ≤ exact_limit`` (tests do this).
    """
    n = len(failure_probs)
    _check_sizes(n, k1, k2)
    slack = k1 + k2 - n
    if slack <= 0:
        # Quorums need not overlap at all: the property can always be violated.
        return 0.0
    pmf = poisson_binomial_pmf(list(failure_probs))
    return float(pmf[:slack].sum())


def enumerate_threshold_pair_property(
    failed: frozenset[int], n: int, k1: int, k2: int
) -> bool:
    """Brute-force oracle: does every (k1, k2) quorum pair meet in a correct node?

    Exponential; used by tests to validate
    :func:`prob_threshold_pair_intersects_in_correct`.
    """
    _check_sizes(n, k1, k2)
    universe = range(n)
    for q1 in itertools.combinations(universe, k1):
        set1 = frozenset(q1)
        for q2 in itertools.combinations(universe, k2):
            overlap = set1 & frozenset(q2)
            if not (overlap - failed):
                return False
    return True


def _check_sizes(n: int, k1: int, k2: int) -> None:
    if n <= 0:
        raise InvalidConfigurationError(f"n must be positive, got {n}")
    for k in (k1, k2):
        if not 1 <= k <= n:
            raise InvalidConfigurationError(f"quorum size {k} outside [1, {n}]")


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise InvalidConfigurationError(f"probability {p} outside [0, 1]")
