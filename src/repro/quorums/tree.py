"""Tree quorum systems (Agrawal–El Abbadi) — another sub-linear family.

Completes the quorum-construction catalogue alongside grids and
probabilistic quorums: nodes form a complete binary tree and a quorum is a
root-to-leaf *path with majority substitution* — here we implement the
classic recursive rule:

    quorum(T) = {root} ∪ quorum(one child subtree)        (root alive)
              | quorum(left) ∪ quorum(right)              (root failed)

Any two tree quorums intersect, quorum sizes range from O(log n) (all
roots alive) to O(n) in the worst case — a useful contrast for the
paper's §4 discussion of pessimistic-vs-probabilistic quorum sizing.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator

from repro.errors import InvalidConfigurationError
from repro.quorums.system import QuorumSystem


class TreeQuorums(QuorumSystem):
    """Quorums over a complete binary tree of ``2^depth - 1`` nodes.

    Node ``i``'s children are ``2i + 1`` and ``2i + 2`` (heap layout).
    """

    def __init__(self, depth: int):
        if depth <= 0:
            raise InvalidConfigurationError(f"depth must be positive, got {depth}")
        self.depth = depth
        super().__init__((1 << depth) - 1)

    # -- tree helpers ------------------------------------------------------
    def _children(self, node: int) -> tuple[int, int] | None:
        left, right = 2 * node + 1, 2 * node + 2
        if right < self.n:
            return left, right
        return None

    def _minimal_quorums_of(self, node: int) -> Iterator[frozenset[int]]:
        children = self._children(node)
        if children is None:
            yield frozenset({node})
            return
        left, right = children
        # Root alive: root plus a quorum of either subtree.
        for sub in self._minimal_quorums_of(left):
            yield frozenset({node}) | sub
        for sub in self._minimal_quorums_of(right):
            yield frozenset({node}) | sub
        # Root failed: quorums of both subtrees.
        for sub_left in self._minimal_quorums_of(left):
            for sub_right in self._minimal_quorums_of(right):
                yield sub_left | sub_right

    def minimal_quorums(self) -> Iterator[FrozenSet[int]]:
        seen: set[frozenset[int]] = set()
        for quorum in self._minimal_quorums_of(0):
            if quorum in seen:
                continue
            if any(known <= quorum for known in seen):
                continue
            seen.add(quorum)
            yield quorum

    def is_quorum(self, nodes: FrozenSet[int]) -> bool:
        node_set = self.validate_universe(nodes)
        return self._covers(0, node_set)

    def _covers(self, node: int, available: frozenset[int]) -> bool:
        children = self._children(node)
        if children is None:
            return node in available
        left, right = children
        if node in available:
            return self._covers(left, available) or self._covers(right, available)
        return self._covers(left, available) and self._covers(right, available)

    def min_quorum_cardinality(self) -> int:
        """Best case: one root-to-leaf path, i.e. the tree depth."""
        return self.depth

    def __repr__(self) -> str:
        return f"TreeQuorums(depth={self.depth}, n={self.n})"
