"""The single clock shim behind every tracing timestamp.

All span timing in :mod:`repro.obs` flows through :func:`perf` (relative,
monotonic, high resolution) and :func:`wall` (absolute epoch seconds, read
once per tracer to anchor exports).  Concentrating the reads here keeps the
``wall-clock`` contract boundary narrow: ``*repro/obs/*`` is an allowed
boundary precisely because no answer value ever depends on these reads —
bit-identity with tracing on/off is pinned by ``tests/test_obs.py``.
"""

from __future__ import annotations

import time as _time

__all__ = ["perf", "wall"]


def perf() -> float:
    """Monotonic high-resolution timestamp used for span start/end/events."""
    return _time.perf_counter()


def wall() -> float:
    """Wall-clock epoch seconds; read once per tracer to anchor perf times."""
    return _time.time()
