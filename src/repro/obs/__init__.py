"""repro.obs — deterministic tracing and profiling for the whole stack.

Quick tour::

    from repro.obs import InMemoryExporter, Tracer, use_tracer
    from repro.obs.export import write_chrome_trace

    exporter = InMemoryExporter()
    tracer = Tracer.for_key(("my-campaign", 42), exporter=exporter)
    with use_tracer(tracer):
        answers = engine.run(queries, policy=policy)   # spans recorded
    write_chrome_trace(exporter.records, "trace.json")  # open in Perfetto

Guarantees: span/trace ids derive from digests and structural counters
(never RNG), tracing never touches the spawned ``SeedSequence`` streams
(answers are bit-identical with tracing on/off), and the disabled tracer
is a no-op whose overhead is benchmarked at ≤5 %.
"""

from repro.obs.trace import (
    InMemoryExporter,
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanContext,
    SpanRecord,
    Tracer,
    current_span,
    current_tracer,
    register_tracer,
    resolve_context,
    unregister_tracer,
    use_tracer,
)
from repro.obs.export import (
    JsonlExporter,
    chrome_trace,
    read_jsonl_spans,
    write_chrome_trace,
    write_trace,
)

__all__ = [
    "InMemoryExporter",
    "JsonlExporter",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "SpanContext",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "current_span",
    "current_tracer",
    "read_jsonl_spans",
    "register_tracer",
    "resolve_context",
    "unregister_tracer",
    "use_tracer",
    "write_chrome_trace",
    "write_trace",
]
