"""Span exporters: JSONL span logs and Chrome trace-event JSON.

Three export surfaces, one record type (:class:`~repro.obs.trace.SpanRecord`):

* :class:`~repro.obs.trace.InMemoryExporter` (lives in ``trace``) — the
  default, used by tests.
* :class:`JsonlExporter` — one JSON object per line, round-trippable via
  :func:`read_jsonl_spans`.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format consumed by Perfetto and ``chrome://tracing``: one track per
  span ``track`` label (overlapping spans fan out into numbered lanes),
  shard attempts as complete slices, span events as instant events.

All output is deterministic for a given record set: keys are sorted and
event order is a pure function of the records.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable, List, Optional, Sequence

from repro.obs.trace import SpanRecord

__all__ = [
    "JsonlExporter",
    "chrome_trace",
    "read_jsonl_spans",
    "write_chrome_trace",
    "write_trace",
]


class JsonlExporter:
    """Append finished spans to a JSONL file, one object per line."""

    def __init__(self, path) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "w", encoding="utf-8")

    def export(self, record: SpanRecord) -> None:
        line = json.dumps(record.to_dict(), sort_keys=True)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_jsonl_spans(path) -> List[SpanRecord]:
    """Load a :class:`JsonlExporter` file back into span records."""
    records: List[SpanRecord] = []
    with open(str(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_dict(json.loads(line)))
    return records


def _assign_tracks(records: Sequence[SpanRecord]):
    """Lay spans out into (track, lane) rows; overlapping spans get new lanes.

    Returns ``(slices, tid_names)`` where ``slices`` is a list of
    ``(record, tid)`` and ``tid_names`` maps tid → display name.
    """
    groups: dict = {}
    for record in records:
        groups.setdefault(record.track, []).append(record)
    slices = []
    tid_names = {}
    next_tid = 1
    for track in sorted(groups):
        rows = sorted(groups[track], key=lambda r: (r.start, r.end, r.span_id))
        lane_ends: List[float] = []
        lane_tids: List[int] = []
        for record in rows:
            lane = None
            for index, end in enumerate(lane_ends):
                if end <= record.start + 1e-12:
                    lane = index
                    break
            if lane is None:
                lane = len(lane_ends)
                lane_ends.append(record.end)
                lane_tids.append(next_tid)
                next_tid += 1
            else:
                lane_ends[lane] = record.end
            slices.append((record, lane_tids[lane]))
        for lane, tid in enumerate(lane_tids):
            tid_names[tid] = track if len(lane_tids) == 1 else f"{track} #{lane}"
    return slices, tid_names


def chrome_trace(records: Iterable[SpanRecord], *, trace_id: Optional[str] = None) -> dict:
    """Render span records as a Chrome trace-event JSON document.

    Timestamps are microseconds relative to the earliest span start, so the
    document is deterministic for a fixed record set.  Load the result in
    Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
    """
    records = list(records)
    if trace_id is None:
        trace_id = records[0].trace_id if records else ""
    zero = min((record.start for record in records), default=0.0)
    slices, tid_names = _assign_tracks(records)

    def micros(value: float) -> float:
        return round((value - zero) * 1e6, 3)

    events = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": f"repro trace {trace_id}"}}
    ]
    for tid in sorted(tid_names):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid, "args": {"name": tid_names[tid]}}
        )
        events.append(
            {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": tid, "args": {"sort_index": tid}}
        )
    for record, tid in slices:
        args = dict(sorted(record.attributes.items()))
        args["span_id"] = record.span_id
        if record.parent_id:
            args["parent_id"] = record.parent_id
        if record.status != "ok":
            args["status"] = record.status
        if record.links:
            args["links"] = list(record.links)
        events.append(
            {
                "name": record.name,
                "cat": record.track,
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": micros(record.start),
                "dur": round(max(record.end - record.start, 0.0) * 1e6, 3),
                "args": args,
            }
        )
        for ts, name, attrs in record.events:
            events.append(
                {
                    "name": name,
                    "cat": record.track,
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid,
                    "ts": micros(ts),
                    "args": dict(sorted(attrs.items())),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[SpanRecord], path) -> None:
    """Serialise :func:`chrome_trace` output to ``path`` (deterministic bytes)."""
    document = chrome_trace(records)
    with open(str(path), "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, indent=None, separators=(",", ":"))
        handle.write("\n")


def write_trace(records: Iterable[SpanRecord], path) -> None:
    """Write records to ``path`` — JSONL when it ends in ``.jsonl``, else Chrome JSON."""
    if str(path).endswith(".jsonl"):
        with JsonlExporter(path) as exporter:
            for record in records:
                exporter.export(record)
    else:
        write_chrome_trace(records, path)
