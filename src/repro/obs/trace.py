"""Deterministic structured tracing for campaigns, runtimes, and the service.

Design constraints (they shape everything here):

* **Determinism.**  Trace ids are SHA-256 digests of caller-supplied keys
  (cache keys, query text) and span ids are structural — ``{parent}.{n}``
  counters or explicit ``{parent}.s{shard}a{attempt}`` keys — so no span id
  ever consumes ambient RNG, and tracing never touches the spawned
  :class:`~numpy.random.SeedSequence` streams.  Answers are bit-identical
  with tracing on or off; ``tests/test_obs.py`` pins this.
* **Cheap when off.**  The default tracer is :data:`NULL_TRACER`, whose
  ``span()`` returns a shared no-op span without touching contextvars or
  locks.  ``benchmarks/bench_obs.py`` enforces the ≤5 % disabled-overhead
  budget.
* **Survives the pool hop.**  A :class:`SpanContext` is a picklable
  ``(trace_id, span_id)`` pair.  Shard payloads carry one across
  ``run_sharded``/``run_supervised``; workers call :func:`resolve_context`
  to re-attach to the live tracer.  Thread-pool workers share the process
  and find it; forked process-pool children fail the pid check and degrade
  to the no-op tracer (the supervisor still records their attempt timeline
  from the parent side).

Timing flows through :mod:`repro.obs.clock`, the declared ``wall-clock``
boundary for this package.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
from dataclasses import dataclass, field
from contextvars import ContextVar
from typing import Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.obs import clock

__all__ = [
    "Span",
    "SpanContext",
    "SpanRecord",
    "Tracer",
    "InMemoryExporter",
    "NULL_SPAN",
    "NULL_TRACER",
    "current_span",
    "current_tracer",
    "register_tracer",
    "resolve_context",
    "unregister_tracer",
    "use_tracer",
]


@dataclass(frozen=True)
class SpanContext:
    """Picklable handle to a span — attach to payloads crossing pools."""

    trace_id: str
    span_id: str


@dataclass
class SpanRecord:
    """A finished span, as handed to exporters."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: float
    track: str = "main"
    status: str = "ok"
    attributes: dict = field(default_factory=dict)
    events: Tuple[Tuple[float, str, dict], ...] = ()
    links: Tuple[str, ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "track": self.track,
            "status": self.status,
            "attributes": dict(sorted(self.attributes.items())),
            "events": [
                [ts, name, dict(sorted(attrs.items()))] for ts, name, attrs in self.events
            ],
            "links": list(self.links),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpanRecord":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            name=str(data["name"]),
            start=float(data["start"]),
            end=float(data["end"]),
            track=str(data.get("track", "main")),
            status=str(data.get("status", "ok")),
            attributes=dict(data.get("attributes", {})),
            events=tuple(
                (float(ts), str(name), dict(attrs))
                for ts, name, attrs in data.get("events", [])
            ),
            links=tuple(str(link) for link in data.get("links", [])),
        )


class InMemoryExporter:
    """Collects finished spans in memory; the default, and the test exporter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list = []

    def export(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> list:
        with self._lock:
            return list(self._records)

    def find(self, name: str) -> list:
        return [record for record in self.records if record.name == name]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()


class _NullSpan:
    """Shared do-nothing span — every method is a constant-time no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key, value) -> None:
        pass

    def event(self, name, **attributes) -> None:
        pass

    def link(self, span_id) -> None:
        pass

    def finish(self) -> None:
        pass

    def context(self) -> None:
        return None


NULL_SPAN = _NullSpan()


class _NullTracer:
    """Disabled tracer: ``span()`` hands back the shared no-op span."""

    __slots__ = ()
    enabled = False
    trace_id = ""

    def span(self, name, **kwargs) -> _NullSpan:
        return NULL_SPAN

    def record_span(self, name, start, end, **kwargs) -> None:
        return None


NULL_TRACER = _NullTracer()

_ACTIVE: ContextVar = ContextVar("repro_obs_active_span", default=None)
_TRACER_VAR: ContextVar = ContextVar("repro_obs_tracer", default=None)

# trace_id → [tracer, refcount] for this process, so pool workers handed a
# bare SpanContext can find the exporter.  Guarded by its own lock;
# refcounted because a long-lived registration (the serve daemon) and
# short ``use_tracer`` scopes of the same tracer may overlap.
_LIVE_LOCK = threading.Lock()
_LIVE: dict = {}


def register_tracer(tracer: "Tracer") -> None:
    """Make ``tracer`` resolvable from its :class:`SpanContext`\\ s."""
    with _LIVE_LOCK:
        entry = _LIVE.get(tracer.trace_id)
        if entry is not None and entry[0] is tracer:
            entry[1] += 1
        else:
            _LIVE[tracer.trace_id] = [tracer, 1]


def unregister_tracer(tracer: "Tracer") -> None:
    """Drop one registration of ``tracer`` (freed once the count hits 0)."""
    with _LIVE_LOCK:
        entry = _LIVE.get(tracer.trace_id)
        if entry is not None and entry[0] is tracer:
            entry[1] -= 1
            if entry[1] <= 0:
                del _LIVE[tracer.trace_id]


class Span:
    """A live span.  Use as a context manager, or call :meth:`finish`."""

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "track",
        "start",
        "end",
        "status",
        "attributes",
        "_events",
        "_links",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent_id: Optional[str],
        track: str,
        attributes: dict,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.track = track
        self.start = clock.perf()
        self.end: Optional[float] = None
        self.status = "ok"
        self.attributes = attributes
        self._events: list = []
        self._links: list = []
        self._token = None

    def set(self, key: str, value) -> None:
        self.attributes[key] = value

    def event(self, name: str, **attributes) -> None:
        self._events.append((clock.perf(), name, attributes))

    def link(self, span_id: Optional[str]) -> None:
        if span_id:
            self._links.append(str(span_id))

    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.tracer.trace_id, span_id=self.span_id)

    def finish(self) -> None:
        if self.end is not None:
            return
        self.end = clock.perf()
        self.tracer._export(
            SpanRecord(
                trace_id=self.tracer.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start=self.start,
                end=self.end,
                track=self.track,
                status=self.status,
                attributes=self.attributes,
                events=tuple(self._events),
                links=tuple(self._links),
            )
        )

    def __enter__(self) -> "Span":
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        self.finish()
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        return False


_UNSET = object()

ParentLike = Union[Span, SpanContext, None]


class Tracer:
    """Creates spans with structural ids and hands finished ones to an exporter."""

    __slots__ = ("trace_id", "enabled", "exporter", "started_wall", "started_perf", "_lock", "_children", "_pid")

    def __init__(
        self,
        *,
        trace_id: str = "trace",
        exporter=None,
        enabled: bool = True,
    ) -> None:
        self.trace_id = trace_id
        self.enabled = enabled
        self.exporter = exporter if exporter is not None else InMemoryExporter()
        self.started_wall = clock.wall()
        self.started_perf = clock.perf()
        self._lock = threading.Lock()
        self._children: dict = {}
        self._pid = os.getpid()

    @classmethod
    def for_key(cls, key, *, exporter=None, enabled: bool = True) -> "Tracer":
        """Build a tracer whose trace id is a digest of ``key`` (never RNG)."""
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]
        return cls(trace_id=digest, exporter=exporter, enabled=enabled)

    def _alloc_id(self, parent_id: Optional[str], key: Optional[str]) -> str:
        prefix = parent_id if parent_id is not None else f"{self.trace_id}:"
        if key is not None:
            return f"{prefix}.{key}" if parent_id is not None else f"{prefix}{key}"
        with self._lock:
            n = self._children.get(prefix, 0)
            self._children[prefix] = n + 1
        return f"{prefix}.{n}" if parent_id is not None else f"{prefix}{n}"

    def _resolve_parent(self, parent) -> Tuple[Optional[str], Optional[str]]:
        """Return ``(parent_id, inherited_track)`` for a parent-ish value."""
        if parent is _UNSET:
            active = _ACTIVE.get()
            if active is not None and active.tracer is self:
                return active.span_id, active.track
            return None, None
        if parent is None:
            return None, None
        if isinstance(parent, Span):
            return parent.span_id, parent.track
        if isinstance(parent, SpanContext):
            return parent.span_id, None
        return str(parent), None

    def span(
        self,
        name: str,
        *,
        parent=_UNSET,
        track: Optional[str] = None,
        key: Optional[str] = None,
        **attributes,
    ):
        """Open a live span.  ``parent`` defaults to the active span (if ours)."""
        if not self.enabled:
            return NULL_SPAN
        parent_id, inherited = self._resolve_parent(parent)
        span_id = self._alloc_id(parent_id, key)
        return Span(self, name, span_id, parent_id, track or inherited or "main", attributes)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent=None,
        track: str = "main",
        key: Optional[str] = None,
        status: str = "ok",
        events: Sequence[Tuple[float, str, dict]] = (),
        links: Sequence[str] = (),
        **attributes,
    ) -> Optional[str]:
        """Record an already-timed span (supervisor-side attempt timelines)."""
        if not self.enabled:
            return None
        parent_id, _ = self._resolve_parent(parent if parent is not None else None)
        span_id = self._alloc_id(parent_id, key)
        self._export(
            SpanRecord(
                trace_id=self.trace_id,
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                start=start,
                end=end,
                track=track,
                status=status,
                attributes=attributes,
                events=tuple(events),
                links=tuple(links),
            )
        )
        return span_id

    def _export(self, record: SpanRecord) -> None:
        self.exporter.export(record)


def current_tracer() -> Union[Tracer, _NullTracer]:
    """The tracer installed by :func:`use_tracer` on this context, or the no-op."""
    tracer = _TRACER_VAR.get()
    return tracer if tracer is not None else NULL_TRACER


def current_span():
    """The innermost live span on this context, or ``None``."""
    return _ACTIVE.get()


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the context-local tracer and register it live."""
    token = _TRACER_VAR.set(tracer)
    register_tracer(tracer)
    try:
        yield tracer
    finally:
        _TRACER_VAR.reset(token)
        unregister_tracer(tracer)


def resolve_context(context: Optional[SpanContext]):
    """Re-attach a pickled :class:`SpanContext` to its live tracer.

    Returns ``(tracer, parent_context)``.  Thread-pool workers share the
    process and find the registered tracer; forked process-pool children
    inherit the registry but fail the pid check and degrade to the no-op
    tracer (writing to an inherited exporter fd from a child would corrupt
    the parent's span log).
    """
    if context is None:
        return NULL_TRACER, None
    with _LIVE_LOCK:
        entry = _LIVE.get(context.trace_id)
        tracer = entry[0] if entry is not None else None
    if tracer is None or tracer._pid != os.getpid():
        return NULL_TRACER, None
    return tracer, context
