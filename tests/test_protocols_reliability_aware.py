"""Unit tests for reliability-aware (pinned-quorum) Raft."""

from __future__ import annotations

import pytest

from repro.analysis.config import FailureConfig, FaultKind
from repro.analysis.predicates import predicate_probability
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import NodeModel, heterogeneous_fleet
from repro.protocols.reliability_aware import (
    ObliviousDurabilityRaftSpec,
    ReliabilityAwareRaftSpec,
)


@pytest.fixture
def paper_spec() -> ReliabilityAwareRaftSpec:
    """The §3 scenario: 7 nodes, indices 4-6 pinned reliable."""
    return ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], require_pinned=1)


class TestConstruction:
    def test_pinned_out_of_range(self):
        with pytest.raises(InvalidConfigurationError):
            ReliabilityAwareRaftSpec(3, pinned=[5])

    def test_require_exceeds_pinned(self):
        with pytest.raises(InvalidConfigurationError):
            ReliabilityAwareRaftSpec(5, pinned=[0], require_pinned=2)

    def test_require_exceeds_quorum(self):
        with pytest.raises(InvalidConfigurationError):
            ReliabilityAwareRaftSpec(5, pinned=[0, 1, 2, 3], require_pinned=4)

    def test_bad_placement(self):
        with pytest.raises(InvalidConfigurationError):
            ReliabilityAwareRaftSpec(5, pinned=[0], placement="magic")

    def test_not_symmetric(self, paper_spec):
        assert not paper_spec.symmetric


class TestSafety:
    def test_structural_safety_unchanged(self, paper_spec):
        config = FailureConfig.from_failed_indices(7, [0, 1, 2])
        assert paper_spec.is_safe(config)

    def test_byzantine_unsafe(self, paper_spec):
        config = FailureConfig.from_failed_indices(7, [0], kind=FaultKind.BYZANTINE)
        assert not paper_spec.is_safe(config)


class TestLiveness:
    def test_needs_pinned_correct_node(self, paper_spec):
        # All three pinned nodes down: no valid quorum can form.
        config = FailureConfig.from_failed_indices(7, [4, 5, 6])
        assert not paper_spec.is_live(config)

    def test_live_with_majority_and_pinned(self, paper_spec):
        config = FailureConfig.from_failed_indices(7, [0, 1])
        assert paper_spec.is_live(config)

    def test_pinning_costs_liveness_vs_vanilla(self, paper_spec):
        """Pinned quorums add a liveness failure mode (all pinned down)."""
        vanilla = ObliviousDurabilityRaftSpec(7)
        config = FailureConfig.from_failed_indices(7, [4, 5, 6])
        assert vanilla.is_live(config)
        assert not paper_spec.is_live(config)


class TestDurabilityPolicy:
    def test_policy_loss_requires_both_pools(self, paper_spec):
        # 3 unpinned + 0 pinned failed: the pinned quorum member survives.
        config = FailureConfig.from_failed_indices(7, [0, 1, 2])
        assert paper_spec.is_durable(config)
        # 3 unpinned + 1 pinned failed: the policy quorum is coverable.
        config_loss = FailureConfig.from_failed_indices(7, [0, 1, 2, 4])
        assert not paper_spec.is_durable(config_loss)

    def test_adversarial_stricter_than_policy(self):
        policy = ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], placement="policy")
        adversarial = ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], placement="adversarial")
        # 2 unpinned + 2 pinned failed: adversarial quorum (2 pinned + 2
        # unpinned) is covered; the policy quorum (1 pinned + 3 unpinned)
        # is not.
        config = FailureConfig.from_failed_indices(7, [0, 1, 4, 5])
        assert policy.is_durable(config)
        assert not adversarial.is_durable(config)

    def test_oblivious_loses_at_quorum_failures(self):
        spec = ObliviousDurabilityRaftSpec(7)
        assert spec.is_durable(FailureConfig.from_failed_indices(7, [0, 1, 2]))
        assert not spec.is_durable(FailureConfig.from_failed_indices(7, [0, 1, 2, 3]))


class TestDurabilityOrdering:
    def test_full_paper_ordering(self):
        """Oblivious < pinned durability on the §3 mixed fleet."""
        fleet = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])
        oblivious = predicate_probability(fleet, ObliviousDurabilityRaftSpec(7).is_durable)
        policy = predicate_probability(
            fleet, ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6]).is_durable
        )
        adversarial = predicate_probability(
            fleet,
            ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], placement="adversarial").is_durable,
        )
        assert oblivious < adversarial < policy

    def test_pinning_two_nodes_beats_one(self):
        fleet = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])
        one = predicate_probability(
            fleet, ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], require_pinned=1).is_durable
        )
        two = predicate_probability(
            fleet, ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], require_pinned=2).is_durable
        )
        assert two > one
