"""Cross-module integration tests: the pipelines a user actually runs."""

from __future__ import annotations

import pytest

from repro.analysis import analyze, counting_reliability, monte_carlo_reliability, nines
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec


class TestTelemetryToPlanningPipeline:
    """telemetry → fitted curves → fleet → analysis → planner decision."""

    def test_end_to_end(self):
        from repro.telemetry import fit_model_curves, fleet_from_telemetry, generate_fleet_telemetry

        telemetry = generate_fleet_telemetry(machines_per_model=120, seed=21)
        fits = fit_model_curves(telemetry)
        assert fits

        fleet = fleet_from_telemetry(
            telemetry, [("HMS-D14", 5)], window_hours=720.0, deployment_age_hours=8766.0
        )
        result = analyze(RaftSpec(5), fleet)
        assert result.safe.value == 1.0
        assert result.safe_and_live.value > 0.99

        # The reconfiguration policy consumes the same fitted curves.
        from repro.faults.mixture import NodeModel
        from repro.planner.reconfig import PreemptiveReconfigPolicy

        curves = [fits["ECO-R2"].curve] * 5
        policy = PreemptiveReconfigPolicy(RaftSpec, 5.0, NodeModel(0.001))
        decision = policy.evaluate(curves, window_start_hours=25_000.0, window_hours=720.0)
        # Old flaky hardware deep into wear-out must trigger replacement.
        assert decision.acted


class TestAnalysisToSimulatorValidation:
    """Predicate-level S&L probability ≈ empirical frequency over seeded runs."""

    def test_raft_three_node_empirical_matches_analytic(self):
        from repro.analysis.montecarlo import sample_configuration, wilson_interval
        from repro._rng import as_generator
        from repro.sim import Cluster, plan_from_config
        from repro.sim.checker import audit_run
        from repro.sim.raft import raft_node_factory

        n, p = 3, 0.25  # inflated p so 60 runs give signal
        fleet = uniform_fleet(n, p)
        spec = RaftSpec(n)
        analytic = counting_reliability(spec, fleet).safe_and_live.value

        rng = as_generator(99)
        runs, good = 60, 0
        commands = ["a", "b", "c"]
        for trial in range(runs):
            config = sample_configuration(fleet, rng)
            cluster = Cluster(n, raft_node_factory(), seed=1000 + trial)
            plan_from_config(config, duration=12.0, crash_window=(0.0, 0.4), seed=trial).apply(
                cluster
            )
            cluster.start()
            at = 1.0
            for command in commands:
                cluster.submit(command, at=at)
                at += 0.1
            cluster.run_until(12.0)
            correct = sorted(set(range(n)) - set(config.failed_indices))
            verdict = audit_run(cluster.trace, commands, correct_nodes=correct)
            good += verdict.safe and verdict.live

        low, high = wilson_interval(good, runs)
        assert low - 0.05 <= analytic <= high + 0.05

    def test_flexible_quorum_spec_matches_flexible_sim(self):
        """FlexRaft(q_per=4, q_vc=3) at n=5: two crashes stall; spec agrees."""
        from repro.analysis.config import FailureConfig

        spec = RaftSpec(5, q_per=4, q_vc=3)
        config = FailureConfig.from_failed_indices(5, [3, 4])
        assert not spec.is_live(config)  # predicate verdict

        from repro.sim import Cluster, run_scenario
        from repro.sim.checker import check_completion
        from repro.sim.raft import raft_node_factory

        cluster = Cluster(5, raft_node_factory(q_per=4, q_vc=3), seed=12)
        cluster.crash_at(3, 0.2)
        cluster.crash_at(4, 0.2)
        trace = run_scenario(cluster, commands=["w"], duration=8.0)
        assert not check_completion(trace, ["w"], correct_nodes=[0, 1, 2]).holds


class TestMarkovVsWindowAnalysis:
    """The two §2 vocabularies must agree where their models coincide."""

    def test_no_repair_window_unavailability_equals_binomial_analysis(self):
        from repro.markov.builders import ClusterMarkovModel

        n, rate, window = 5, 2e-4, 720.0
        model = ClusterMarkovModel(n, rate, 0.0)
        markov_view = model.window_unavailability(3, window)

        from repro.faults.curves import ConstantHazard

        p_window = ConstantHazard(rate).failure_probability(0, window)
        analysis_view = 1.0 - counting_reliability(
            RaftSpec(n), uniform_fleet(n, p_window)
        ).live.value
        assert markov_view == pytest.approx(analysis_view, rel=1e-9)

    def test_repair_beats_window_model(self):
        """With repair, long-run availability exceeds the repair-free window view."""
        from repro.markov.builders import ClusterMarkovModel

        model_with_repair = ClusterMarkovModel(5, 2e-4, 0.05)
        availability = model_with_repair.steady_state_availability(3)
        no_repair_window = 1.0 - ClusterMarkovModel(5, 2e-4, 0.0).window_unavailability(
            3, 8766.0
        )
        assert availability > no_repair_window


class TestEstimatorConsistencyAtScale:
    def test_three_estimators_agree_on_mixed_fleet(self, mixed_fleet):
        spec = RaftSpec(7)
        counted = counting_reliability(spec, mixed_fleet)
        mc = monte_carlo_reliability(spec, mixed_fleet, trials=40_000, seed=5)
        from repro.analysis.importance import importance_sample_violation

        importance = importance_sample_violation(
            spec, mixed_fleet, predicate="live", trials=40_000, seed=6
        )
        assert mc.live.ci_low <= counted.live.value <= mc.live.ci_high
        assert importance.violation.value == pytest.approx(
            1.0 - counted.live.value, rel=0.15
        )

    def test_analyze_dispatches_sensibly(self, mixed_fleet):
        from repro.protocols.reliability_aware import ReliabilityAwareRaftSpec

        symmetric = analyze(RaftSpec(7), mixed_fleet)
        assert symmetric.method == "counting"
        asymmetric = analyze(ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6]), mixed_fleet)
        assert asymmetric.method == "exact"


class TestCostStoryEndToEnd:
    def test_paper_cost_narrative(self):
        """Full E2: match reliability, compute savings, verify nines."""
        from repro.planner import (
            RELIABLE_SKU,
            SPOT_SKU,
            DeploymentPlan,
            cost_ratio,
            equivalent_reliability_size,
        )

        reference = DeploymentPlan(RELIABLE_SKU, 3)
        match = equivalent_reliability_size(reference, SPOT_SKU)
        assert match is not None and match.plan.count == 9
        savings = cost_ratio(reference, match.plan)
        assert savings == pytest.approx(10.0 / 3.0)
        assert nines(match.reliability) >= 3.0
