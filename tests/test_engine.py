"""Tests for the Scenario/Engine API (repro.engine).

The contract under test: the engine is a *planner*, never a different
estimator — whatever execution plan it picks (shared DP sweep, memo
cache, per-scenario fallback), every ``ReliabilityResult`` must be
bit-identical to calling the legacy free functions directly.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import analyze, analyze_batch
from repro.analysis.result import Estimate, ReliabilityResult
from repro.engine import (
    ReliabilityEngine,
    Scenario,
    ScenarioSet,
    default_engine,
    register_estimator,
    registered_estimators,
)
from repro.engine.registry import get_estimator
from repro.errors import EstimationError, InvalidConfigurationError
from repro.faults.correlation import CommonShockModel, rollout_shock
from repro.faults.mixture import Fleet, NodeModel, uniform_fleet
from repro.protocols.benor import BenOrSpec, ByzantineBenOrSpec
from repro.protocols.hybrid import UprightSpec
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import FlexibleRaftSpec, RaftSpec
from repro.protocols.reliability_aware import ReliabilityAwareRaftSpec


def _mixed_fleet(n: int) -> Fleet:
    return Fleet(
        tuple(
            NodeModel(p_crash=0.02 + 0.01 * (i % 4), p_byzantine=0.003 * (i % 3))
            for i in range(n)
        )
    )


#: (spec, fleet) pairs across the protocol zoo, symmetric and not.
ZOO = [
    (RaftSpec(3), uniform_fleet(3, 0.01)),
    (RaftSpec(7), _mixed_fleet(7)),
    (FlexibleRaftSpec(5, 2, 4), uniform_fleet(5, 0.05)),
    (PBFTSpec(4), uniform_fleet(4, 0.01, byzantine_fraction=1.0)),
    (PBFTSpec(7), _mixed_fleet(7)),
    (BenOrSpec(7), uniform_fleet(7, 0.05)),
    (ByzantineBenOrSpec(11), _mixed_fleet(11)),
    (UprightSpec(2, 1), _mixed_fleet(6)),
    (ReliabilityAwareRaftSpec(6, pinned=(0, 1)), _mixed_fleet(6)),
]


class TestEquivalence:
    @pytest.mark.parametrize("spec,fleet", ZOO, ids=lambda v: repr(v))
    def test_run_one_matches_analyze(self, spec, fleet):
        engine = ReliabilityEngine()
        outcome = engine.run_one(Scenario(spec=spec, fleet=fleet, seed=11))
        assert outcome.result == analyze(spec, fleet, seed=11)

    def test_batched_counting_bit_identical_to_analyze(self):
        """Mixed-protocol grid: shared DP sweeps, full dataclass equality."""
        grid = ScenarioSet.grid(
            protocols=("raft", "pbft"),
            sizes=(3, 5, 7),
            probabilities=(0.01, 0.02, 0.08),
        )
        engine = ReliabilityEngine()
        results = engine.run(grid).results
        legacy = [analyze(s.spec, s.fleet) for s in grid]
        assert results == legacy  # Estimate values, method and detail alike

    def test_multi_spec_same_n_share_one_batch(self):
        """Raft and PBFT scenarios of one size land in the same DP group."""
        fleet_a = uniform_fleet(5, 0.03)
        fleet_b = uniform_fleet(5, 0.04, byzantine_fraction=1.0)
        outcomes = ReliabilityEngine().run(
            [
                Scenario(spec=RaftSpec(5), fleet=fleet_a),
                Scenario(spec=PBFTSpec(5), fleet=fleet_b),
                Scenario(spec=BenOrSpec(5), fleet=fleet_a),
            ]
        )
        assert all(o.provenance.batched for o in outcomes)
        assert all(o.provenance.batch_size == 3 for o in outcomes)
        for outcome in outcomes:
            assert outcome.result == analyze(outcome.scenario.spec, outcome.scenario.fleet)

    def test_analyze_batch_matches_engine(self):
        spec = RaftSpec(5)
        fleets = [uniform_fleet(5, p) for p in (0.01, 0.02, 0.05)]
        batch = analyze_batch(spec, fleets)
        engine_results = ReliabilityEngine().run(
            [Scenario(spec=spec, fleet=fleet) for fleet in fleets]
        ).results
        assert batch == engine_results

    def test_explicit_methods_match_legacy(self, mixed_fleet):
        spec = RaftSpec(7)
        for method in ("counting", "exact", "monte-carlo"):
            outcome = ReliabilityEngine().run_one(
                Scenario(spec=spec, fleet=mixed_fleet, method=method, trials=4_000, seed=5)
            )
            assert outcome.result == analyze(
                spec, mixed_fleet, method=method, trials=4_000, seed=5
            )

    def test_correlated_scenario_matches_legacy(self):
        from repro.analysis.montecarlo import monte_carlo_correlated

        fleet = uniform_fleet(5, 0.05)
        model = CommonShockModel(fleet, (rollout_shock(fleet, 0.02),))
        spec = RaftSpec(5)
        outcome = ReliabilityEngine().run_one(
            Scenario(spec=spec, fleet=fleet, correlation=model, trials=6_000, seed=2)
        )
        assert outcome.result == monte_carlo_correlated(spec, model, trials=6_000, seed=2)
        assert outcome.provenance.estimator == "monte-carlo"

    def test_unknown_method_raises_like_analyze(self, small_cft_fleet):
        with pytest.raises(EstimationError):
            ReliabilityEngine().run_one(
                Scenario(spec=RaftSpec(3), fleet=small_cft_fleet, method="fnord")
            )

    def test_counting_on_asymmetric_raises_like_legacy(self):
        spec, fleet = ReliabilityAwareRaftSpec(6, pinned=(0, 1)), _mixed_fleet(6)
        with pytest.raises(InvalidConfigurationError):
            ReliabilityEngine().run_one(
                Scenario(spec=spec, fleet=fleet, method="counting")
            )

    def test_size_mismatch_raises(self):
        with pytest.raises(InvalidConfigurationError):
            ReliabilityEngine().run_one(
                Scenario(spec=RaftSpec(5), fleet=uniform_fleet(3, 0.01))
            )


class TestCache:
    def test_repeat_run_hits_cache(self):
        engine = ReliabilityEngine()
        scenario = Scenario(spec=RaftSpec(5), fleet=uniform_fleet(5, 0.02))
        first = engine.run_one(scenario)
        second = engine.run_one(scenario)
        assert not first.provenance.cache_hit
        assert second.provenance.cache_hit
        assert first.result == second.result

    def test_in_run_duplicates_answered_once(self):
        engine = ReliabilityEngine()
        scenario = Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01))
        outcomes = engine.run([scenario, scenario, scenario])
        assert [o.provenance.cache_hit for o in outcomes] == [False, True, True]
        assert len({id(o.result) for o in outcomes} ) == 1
        # Counter hygiene: duplicates are hits, never negative misses.
        assert engine.cache_hits == 2
        assert engine.cache_misses == 1

    def test_generator_seed_never_cached(self):
        """Generator seeds are stateful: every call must advance the stream."""
        import numpy as np

        engine = ReliabilityEngine()
        spec, fleet = ReliabilityAwareRaftSpec(6, pinned=(0, 1)), _mixed_fleet(6)
        rng = np.random.default_rng(7)
        scenario = Scenario(
            spec=spec, fleet=fleet, method="monte-carlo", trials=400, seed=rng
        )
        first = engine.run_one(scenario)
        state = rng.bit_generator.state["state"]["state"]
        second = engine.run_one(scenario)
        assert not second.provenance.cache_hit
        # The second run consumed the shared stream, as analyze always did.
        assert rng.bit_generator.state["state"]["state"] != state
        assert first.result == analyze(
            spec, fleet, method="monte-carlo", trials=400, seed=np.random.default_rng(7)
        )

    def test_equal_specs_share_cache_entries(self):
        """Two distinct spec instances with equal parameters dedup."""
        engine = ReliabilityEngine()
        fleet = uniform_fleet(5, 0.02)
        engine.run_one(Scenario(spec=RaftSpec(5), fleet=fleet))
        hit = engine.run_one(Scenario(spec=RaftSpec(5), fleet=fleet))
        assert hit.provenance.cache_hit

    def test_different_quorums_do_not_collide(self):
        engine = ReliabilityEngine()
        fleet = uniform_fleet(5, 0.1)
        default = engine.run_one(Scenario(spec=RaftSpec(5), fleet=fleet))
        flexible = engine.run_one(
            Scenario(spec=RaftSpec(5, q_per=2, q_vc=4), fleet=fleet)
        )
        assert not flexible.provenance.cache_hit
        assert flexible.result.live.value != default.result.live.value

    def test_unseeded_monte_carlo_never_cached(self):
        engine = ReliabilityEngine()
        spec, fleet = ReliabilityAwareRaftSpec(6, pinned=(0, 1)), _mixed_fleet(6)
        scenario = Scenario(spec=spec, fleet=fleet, method="monte-carlo", trials=500)
        assert not engine.run_one(scenario).provenance.cache_hit
        assert not engine.run_one(scenario).provenance.cache_hit

    def test_seeded_monte_carlo_cached(self):
        engine = ReliabilityEngine()
        spec, fleet = ReliabilityAwareRaftSpec(6, pinned=(0, 1)), _mixed_fleet(6)
        scenario = Scenario(spec=spec, fleet=fleet, method="monte-carlo", trials=500, seed=9)
        engine.run_one(scenario)
        assert engine.run_one(scenario).provenance.cache_hit

    def test_cache_bound_evicts_lru(self):
        engine = ReliabilityEngine(cache_size=2)
        fleets = [uniform_fleet(3, p) for p in (0.01, 0.02, 0.03)]
        for fleet in fleets:
            engine.run_one(Scenario(spec=RaftSpec(3), fleet=fleet))
        # Oldest entry evicted; newest two still cached.
        assert not engine.run_one(
            Scenario(spec=RaftSpec(3), fleet=fleets[0])
        ).provenance.cache_hit
        assert engine.run_one(
            Scenario(spec=RaftSpec(3), fleet=fleets[2])
        ).provenance.cache_hit

    def test_cache_clear(self):
        engine = ReliabilityEngine()
        scenario = Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01))
        engine.run_one(scenario)
        engine.cache_clear()
        assert not engine.run_one(scenario).provenance.cache_hit


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_estimators()
        for name in ("counting", "exact", "monte-carlo", "importance"):
            assert name in names

    def test_importance_estimator_produces_result(self):
        outcome = ReliabilityEngine().run_one(
            Scenario(
                spec=RaftSpec(5),
                fleet=uniform_fleet(5, 0.05),
                method="importance",
                trials=2_000,
                seed=1,
            )
        )
        assert outcome.result.method == "importance"
        assert 0.0 <= outcome.result.safe_and_live.value <= 1.0

    def test_global_registration_reaches_engines(self):
        calls = []

        @register_estimator("test-constant")
        def _constant(scenario):
            calls.append(scenario)
            value = Estimate.exact(0.5)
            return ReliabilityResult(
                protocol=scenario.spec.name,
                n=scenario.fleet.n,
                safe=value,
                live=value,
                safe_and_live=value,
                method="test-constant",
            )

        try:
            outcome = ReliabilityEngine().run_one(
                Scenario(
                    spec=RaftSpec(3),
                    fleet=uniform_fleet(3, 0.01),
                    method="test-constant",
                )
            )
            assert outcome.result.safe.value == 0.5
            assert len(calls) == 1
        finally:
            from repro.engine import registry

            registry._ESTIMATORS.pop("test-constant", None)

    def test_reregistration_invalidates_cached_answers(self):
        """Cache keys carry the estimator function, so shadowing a built-in
        never serves the replaced implementation's memoized results."""
        engine = ReliabilityEngine()
        scenario = Scenario(
            spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01), method="counting"
        )
        warm = engine.run_one(scenario)
        assert warm.result.method == "counting"

        def stub(s):
            value = Estimate.exact(0.125)
            return ReliabilityResult(
                protocol=s.spec.name,
                n=s.fleet.n,
                safe=value,
                live=value,
                safe_and_live=value,
                method="stub",
            )

        engine.register("counting", stub)
        shadowed = engine.run_one(scenario)
        assert not shadowed.provenance.cache_hit
        assert shadowed.result.method == "stub"

    def test_counting_override_honored_for_batchable_scenarios(self):
        """The shared DP sweep must not bypass a shadowed counting estimator."""

        def stub(s):
            value = Estimate.exact(0.25)
            return ReliabilityResult(
                protocol=s.spec.name,
                n=s.fleet.n,
                safe=value,
                live=value,
                safe_and_live=value,
                method="stub",
            )

        engine = ReliabilityEngine(estimators={"counting": stub})
        scenarios = [
            Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, p), method="counting")
            for p in (0.01, 0.02, 0.03)
        ]
        results = engine.run(scenarios).results
        assert all(r.method == "stub" for r in results)

    def test_per_engine_override_shadows_builtin(self):
        def fake_counting(scenario):
            value = Estimate.exact(0.25)
            return ReliabilityResult(
                protocol=scenario.spec.name,
                n=scenario.fleet.n,
                safe=value,
                live=value,
                safe_and_live=value,
                method="fake",
            )

        engine = ReliabilityEngine(estimators={"exact": fake_counting})
        outcome = engine.run_one(
            Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01), method="exact")
        )
        assert outcome.result.method == "fake"
        # The global registry is untouched.
        assert get_estimator("exact") is not fake_counting
        clean = ReliabilityEngine().run_one(
            Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01), method="exact")
        )
        assert clean.result.method == "exact"


class TestSerialization:
    @pytest.mark.parametrize(
        "scenario",
        [
            Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01)),
            Scenario(
                spec=RaftSpec(5, q_per=2, q_vc=4),
                fleet=uniform_fleet(5, 0.05),
                method="counting",
                label="flexible",
            ),
            Scenario(
                spec=PBFTSpec(7),
                fleet=_mixed_fleet(7),
                method="monte-carlo",
                trials=5_000,
                seed=42,
            ),
            Scenario(
                spec=FlexibleRaftSpec(5, 3, 4),
                fleet=uniform_fleet(5, 0.02),
                window_hours=720.0,
                label="window[3]",
            ),
        ],
        ids=["default", "flex-quorums", "seeded-mc", "windowed"],
    )
    def test_scenario_round_trip(self, scenario):
        restored = Scenario.from_dict(scenario.to_dict())
        assert restored.to_dict() == scenario.to_dict()
        assert type(restored.spec) is type(scenario.spec)
        assert restored.spec.grouping_key() == scenario.spec.grouping_key()
        assert restored.fleet_key() == scenario.fleet_key()
        assert (restored.method, restored.trials, restored.seed) == (
            scenario.method,
            scenario.trials,
            scenario.seed,
        )
        # Round-tripped scenarios answer identically.
        engine = ReliabilityEngine()
        assert (
            engine.run_one(restored).result
            == engine.run_one(scenario).result
        )

    def test_scenario_set_json_round_trip(self):
        grid = ScenarioSet.grid(
            protocols=("raft", "pbft"), sizes=(3, 4), probabilities=(0.01, 0.1)
        )
        restored = ScenarioSet.from_json(grid.to_json())
        assert restored.to_dicts() == grid.to_dicts()

    def test_grid_shorthand_json(self):
        text = json.dumps(
            {"grid": {"protocols": ["raft"], "sizes": [3], "probabilities": [0.5]}}
        )
        scenario_set = ScenarioSet.from_json(text)
        assert len(scenario_set) == 1
        assert scenario_set[0].spec.n == 3

    def test_grid_json_forwards_byzantine_fraction(self):
        text = json.dumps(
            {
                "grid": {
                    "protocols": ["raft", "pbft"],
                    "sizes": [5],
                    "probabilities": [0.04],
                    "byzantine_fraction": 0.5,
                }
            }
        )
        scenario_set = ScenarioSet.from_json(text)
        for scenario in scenario_set:
            assert scenario.fleet[0].p_byzantine == pytest.approx(0.02)
        # Shared fleets: both protocols ask about the same deployment.
        assert scenario_set[0].fleet == scenario_set[1].fleet

    def test_grid_json_rejects_unknown_fields(self):
        text = json.dumps({"grid": {"protocols": ["raft"], "probabilitys": [0.5]}})
        with pytest.raises(InvalidConfigurationError):
            ScenarioSet.from_json(text)

    def test_correlated_scenario_not_serializable(self):
        fleet = uniform_fleet(3, 0.1)
        scenario = Scenario(
            spec=RaftSpec(3), fleet=fleet, correlation=CommonShockModel(fleet, ())
        )
        with pytest.raises(InvalidConfigurationError):
            scenario.to_dict()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            Scenario.from_dict(
                {"spec": {"protocol": "fnord", "n": 3}, "fleet": {"nodes": []}}
            )

    def test_unregistered_spec_type_rejected(self):
        scenario = Scenario(
            spec=ReliabilityAwareRaftSpec(6, pinned=(0, 1)), fleet=_mixed_fleet(6)
        )
        with pytest.raises(InvalidConfigurationError):
            scenario.to_dict()


class TestDefaultEngine:
    def test_default_engine_is_shared(self):
        assert default_engine() is default_engine()

    def test_analyze_shim_ignores_trials_on_exact_paths(self):
        """Legacy compat: trials is only validated by sampling estimators."""
        result = analyze(RaftSpec(3), uniform_fleet(3, 0.01), trials=0)
        assert result.method == "counting"
        with pytest.raises(InvalidConfigurationError):
            analyze(RaftSpec(3), uniform_fleet(3, 0.01), method="monte-carlo", trials=0)

    def test_analyze_shim_routes_through_default_engine(self):
        engine = default_engine()
        fleet = uniform_fleet(9, 0.037)
        spec = RaftSpec(9)
        analyze(spec, fleet)
        # The shim warmed the shared cache: the engine now answers the
        # same scenario without recomputing.
        outcome = engine.run_one(Scenario(spec=RaftSpec(9), fleet=fleet))
        assert outcome.provenance.cache_hit
