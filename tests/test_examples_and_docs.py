"""Keep documentation honest: run doctests and every example script."""

from __future__ import annotations

import doctest
import pathlib
import subprocess
import sys

import pytest

import repro

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestDoctests:
    def test_package_docstring_examples(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 2  # the quickstart snippet is exercised


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        sorted(path.name for path in EXAMPLES_DIR.glob("*.py")),
    )
    def test_example_runs_clean(self, script):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / script)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert completed.stdout.strip(), f"{script} produced no output"

    def test_expected_example_set_present(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in names
        assert len(names) >= 4  # quickstart + ≥3 scenario scripts
