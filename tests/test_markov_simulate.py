"""Unit tests for Gillespie CTMC simulation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidConfigurationError
from repro.markov.builders import ClusterMarkovModel
from repro.markov.chain import ContinuousTimeMarkovChain, TransitionRates
from repro.markov.simulate import (
    empirical_availability,
    sample_absorption_times,
    simulate_trajectory,
)


@pytest.fixture
def two_state_chain():
    return ContinuousTimeMarkovChain(
        ["up", "down"], TransitionRates({("up", "down"): 0.5, ("down", "up"): 2.0})
    )


class TestTrajectories:
    def test_starts_at_start(self, two_state_chain):
        trajectory = simulate_trajectory(two_state_chain, "up", horizon=10.0, seed=0)
        assert trajectory.states[0] == "up"
        assert trajectory.entry_times[0] == 0.0

    def test_times_monotone(self, two_state_chain):
        trajectory = simulate_trajectory(two_state_chain, "up", horizon=50.0, seed=1)
        times = trajectory.entry_times
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_states_alternate(self, two_state_chain):
        trajectory = simulate_trajectory(two_state_chain, "up", horizon=50.0, seed=2)
        for a, b in zip(trajectory.states, trajectory.states[1:]):
            assert a != b

    def test_absorption_stops_simulation(self):
        chain = ContinuousTimeMarkovChain(
            ["a", "b"], TransitionRates({("a", "b"): 1.0})
        )
        trajectory = simulate_trajectory(chain, "a", horizon=1e9, absorbing=["b"], seed=3)
        assert trajectory.final_state == "b"

    def test_deterministic_under_seed(self, two_state_chain):
        a = simulate_trajectory(two_state_chain, "up", horizon=20.0, seed=7)
        b = simulate_trajectory(two_state_chain, "up", horizon=20.0, seed=7)
        assert a == b

    def test_time_in_state_sums_to_horizon(self, two_state_chain):
        horizon = 25.0
        trajectory = simulate_trajectory(two_state_chain, "up", horizon=horizon, seed=4)
        total = trajectory.time_in_state("up", horizon) + trajectory.time_in_state(
            "down", horizon
        )
        assert total == pytest.approx(horizon)

    def test_validation(self, two_state_chain):
        with pytest.raises(InvalidConfigurationError):
            simulate_trajectory(two_state_chain, "up", horizon=0.0)


class TestAgainstExactSolvers:
    def test_absorption_time_mean_matches_fundamental_matrix(self):
        model = ClusterMarkovModel(3, 0.01, 0.1)
        chain = model.chain(absorbing_at=2)
        exact = chain.expected_time_to_absorption(0, [2])
        samples = sample_absorption_times(chain, 0, [2], trials=3_000, seed=5)
        assert np.isfinite(samples).all()
        assert samples.mean() == pytest.approx(exact, rel=0.1)

    def test_absorption_distribution_is_skewed(self):
        """MTTDL means hide long tails (the paper's 'mean time to
        meaningless' point): median << mean for repairable chains."""
        model = ClusterMarkovModel(3, 0.01, 0.5)
        chain = model.chain(absorbing_at=2)
        samples = sample_absorption_times(chain, 0, [2], trials=3_000, seed=6)
        assert np.median(samples) < samples.mean()

    def test_empirical_availability_matches_steady_state(self, two_state_chain):
        pi = two_state_chain.steady_state()
        measured = empirical_availability(
            two_state_chain, "up", ["up"], horizon=400.0, trials=60, seed=7
        )
        assert measured == pytest.approx(pi["up"], abs=0.03)

    def test_censoring_returns_inf(self):
        chain = ContinuousTimeMarkovChain(
            ["a", "b"], TransitionRates({("a", "b"): 1e-9})
        )
        samples = sample_absorption_times(chain, "a", ["b"], trials=50, horizon=1.0, seed=8)
        assert np.isinf(samples).all()
