"""Tier-1 self-lint: the contract checker run over this repository.

The baseline at ``tests/data/contracts_baseline.json`` is empty on
purpose — every historical violation was either fixed (ambient RNG
construction in engine.chaos / engine.backends) or justified in place
(path allowlists in :data:`repro.contracts.DEFAULT_CONFIG`, inline
``# repro: allow[...]`` markers).  A new violation anywhere in
``src/repro`` therefore fails ``pytest -x -q`` with the offending
file:line, and ``repro-analyze lint`` exits non-zero with the same list.

The registry-drift rule is static; the runtime half of the same contract
is asserted here directly: after importing the backend module, the query
and backend registries must agree kind-for-kind, and every registered
query class must round-trip through its dict codec and build a hashable
cache key.
"""

import textwrap
from pathlib import Path

import pytest

from repro.contracts import DEFAULT_CONFIG, lint_paths

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "tests" / "data" / "contracts_baseline.json"


def test_package_is_contract_clean():
    result = lint_paths([PACKAGE_ROOT], baseline=BASELINE)
    assert result.files_checked > 50, "lint scope collapsed — wrong root?"
    rendered = "\n".join(f.render() for f in result.new)
    assert result.ok, f"new contract violations in src/repro:\n{rendered}"


def test_baseline_has_no_stale_entries():
    # Fixed violations must be deleted from the baseline, not left as
    # standing permission to regress.
    result = lint_paths([PACKAGE_ROOT], baseline=BASELINE)
    assert result.stale_baseline == ()


def test_seeded_violation_is_caught(tmp_path):
    """An ambient ``default_rng()`` added under analysis/ must fail the lint.

    This is the end-to-end proof the self-lint has teeth: the tmp tree
    mirrors the package layout (so the DEFAULT_CONFIG path allowlists
    apply exactly as they would in ``src/repro``) and the seeded file is
    *not* one of the declared stream-boundary modules.
    """
    bad = tmp_path / "repro" / "analysis" / "ambient.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        textwrap.dedent(
            """
            import numpy as np

            def sample(trials):
                return np.random.default_rng().random(trials)
            """
        ),
        encoding="utf-8",
    )
    result = lint_paths([tmp_path], baseline=BASELINE)
    assert not result.ok
    assert [f.rule for f in result.new] == ["rng-discipline"]
    assert result.new[0].path == "repro/analysis/ambient.py"

    # The same construct in a declared boundary module stays legal.
    boundary = tmp_path / "repro" / "analysis" / "kernels.py"
    boundary.write_text(bad.read_text(encoding="utf-8"), encoding="utf-8")
    bad.unlink()
    assert lint_paths([tmp_path], baseline=BASELINE).ok


def test_subtree_lint_agrees_with_full_tree():
    # Path anchoring: linting a subpackage must apply the same allowlists
    # as the full-tree run (findings are reported package-relative).
    result = lint_paths([PACKAGE_ROOT / "engine"])
    rendered = "\n".join(f.render() for f in result.new)
    assert result.new == (), f"engine subtree lint disagrees:\n{rendered}"


# ---------------------------------------------------------------------------
# Runtime registry agreement (the dynamic half of registry-drift)
# ---------------------------------------------------------------------------
def test_runtime_registries_agree():
    import repro.engine.backends  # noqa: F401 — registers the built-ins

    from repro.engine.query import registered_query_kinds
    from repro.engine.registry import registered_backends

    kinds = set(registered_query_kinds())
    backends = set(registered_backends())
    assert kinds == backends
    assert {"reliability", "availability", "mttf", "simulation"} <= kinds


def test_every_query_kind_round_trips_and_keys():
    import repro.engine.backends  # noqa: F401

    from repro.engine.query import _QUERY_KINDS, query_from_dict
    from repro.engine.scenario import Scenario
    from repro.faults.mixture import uniform_fleet
    from repro.protocols.raft import RaftSpec

    scenario = Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01), seed=7)
    extras = {
        "availability": {"failure_rate_per_hour": 0.1, "repair_rate_per_hour": 1.0},
        "mttf": {"failure_rate_per_hour": 0.1, "repair_rate_per_hour": 1.0},
    }
    for kind, cls in sorted(_QUERY_KINDS.items()):
        query = cls(scenario=scenario, **extras.get(kind, {}))
        rebuilt = query_from_dict(query.to_dict())
        assert type(rebuilt) is cls
        # Specs compare by identity, so round-trip equality is asserted on
        # the codec form — a dropped field would change the second dict.
        assert rebuilt.to_dict() == query.to_dict(), (
            f"{kind} does not round-trip through to_dict"
        )
        key = rebuilt.scenario.cache_key(resolved_method="counting")
        assert hash(key) == hash(
            query.scenario.cache_key(resolved_method="counting")
        ), f"{kind} scenario cache_key unstable across the codec"
