"""Query/Answer API tests: codecs, backends, batching, determinism.

Covers the PR 4 acceptance criteria: ``MTTFQuery``/``AvailabilityQuery``
answers match direct :mod:`repro.markov.builders` calls bit-for-bit, a
seeded ``SimulationQuery`` is invariant to ``ExecutionPolicy.jobs``, and
a single JSON document mixing all four query kinds runs end-to-end.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Answer,
    AnswerSet,
    AvailabilityQuery,
    EngineResult,
    ExecutionPolicy,
    MTTFQuery,
    Provenance,
    Query,
    QuerySet,
    ReliabilityEngine,
    ReliabilityQuery,
    Scenario,
    ScenarioSet,
    SimulationQuery,
    query_from_dict,
    registered_backends,
    registered_query_kinds,
)
from repro.errors import EstimationError, InvalidConfigurationError
from repro.faults.afr import afr_to_hourly_rate
from repro.faults.mixture import uniform_fleet
from repro.markov.builders import ClusterMarkovModel
from repro.protocols.raft import RaftSpec


def scenario(n=5, p=0.01, **kw):
    return Scenario(spec=RaftSpec(n), fleet=uniform_fleet(n, p), **kw)


class TestQueryTypes:
    def test_registered_kinds_and_backends_align(self):
        kinds = set(registered_query_kinds())
        assert {"reliability", "availability", "mttf", "simulation"} <= kinds
        assert kinds <= set(registered_backends())

    def test_markov_query_validation(self):
        with pytest.raises(InvalidConfigurationError):
            AvailabilityQuery(scenario(), failure_rate_per_hour=-1.0)
        with pytest.raises(InvalidConfigurationError):
            AvailabilityQuery(scenario(5), quorum_size=6)
        with pytest.raises(InvalidConfigurationError):
            MTTFQuery(scenario(5), persistence_quorum=0)
        with pytest.raises(InvalidConfigurationError, match="window_hours"):
            AvailabilityQuery(
                scenario(),
                failure_rate_per_hour=1e-5,
                repair_rate_per_hour=0.1,
                window_hours=0.0,
            )

    def test_simulation_query_accepts_correlated_scenarios(self):
        # Correlated scenarios sample their window outcomes from the
        # correlation model (repro.injection), and the campaign memo key
        # carries the model, so shock campaigns never share cache entries
        # with their independent twins.
        from repro.faults.correlation import CommonShockModel, ShockGroup

        fleet = uniform_fleet(3, 0.05)
        correlated = Scenario(
            spec=RaftSpec(3),
            fleet=fleet,
            seed=7,
            correlation=CommonShockModel(
                fleet, (ShockGroup(members=(0, 1), probability=0.5),)
            ),
        )
        independent = Scenario(spec=RaftSpec(3), fleet=fleet, seed=7)
        engine = ReliabilityEngine()
        shocked = engine.run_query(
            SimulationQuery(correlated, replicas=4, duration=4.0, commands=2)
        )
        plain = engine.run_query(
            SimulationQuery(independent, replicas=4, duration=4.0, commands=2)
        )
        assert shocked.value.replicas == plain.value.replicas == 4
        assert not plain.provenance.cache_hit  # distinct memo entries
        again = engine.run_query(
            SimulationQuery(correlated, replicas=4, duration=4.0, commands=2)
        )
        assert again.provenance.cache_hit
        assert again.value is shocked.value

    def test_simulation_query_validation(self):
        with pytest.raises(InvalidConfigurationError):
            SimulationQuery(scenario(), replicas=0)
        with pytest.raises(InvalidConfigurationError):
            SimulationQuery(scenario(), duration=-1.0)
        with pytest.raises(InvalidConfigurationError):
            SimulationQuery(scenario(), duration=5.0, crash_window=(0.0, 6.0))

    def test_simulation_query_byzantine_needs_registered_behaviour(self):
        # Byzantine outcomes need a registered misbehaviour class for the
        # spec's family; a Raft fleet has none, and running "Byzantine"
        # nodes as honest code would silently misreport safety.  The error
        # names the fault-plan subsystem as the way in.
        byzantine = Scenario(
            spec=RaftSpec(3), fleet=uniform_fleet(3, 0.1, byzantine_fraction=0.5)
        )
        with pytest.raises(InvalidConfigurationError, match="repro.injection"):
            SimulationQuery(byzantine, replicas=2, duration=4.0)
        # PBFT fleets have built-in behaviours, so the same mix is accepted.
        from repro.protocols.pbft import PBFTSpec

        accepted = SimulationQuery(
            Scenario(
                spec=PBFTSpec(4),
                fleet=uniform_fleet(4, 0.1, byzantine_fraction=0.5),
                seed=3,
            ),
            replicas=2,
            duration=4.0,
            commands=2,
        )
        assert accepted.replicas == 2

    def test_simulation_query_rejects_commands_past_duration(self):
        # All submits happen at 1.0 + 0.1k; commands past the deadline
        # would read as a guaranteed 100% liveness-violation rate.
        with pytest.raises(InvalidConfigurationError, match="never decided"):
            SimulationQuery(scenario(), duration=0.8, commands=3)
        with pytest.raises(InvalidConfigurationError, match="never decided"):
            SimulationQuery(scenario(), duration=12.0, commands=120)
        # a command-free probe of a short window is still allowed
        SimulationQuery(scenario(), duration=0.5, commands=0, crash_window=(0.0, 0.4))

    def test_resolved_quorums_default_to_majority(self):
        q = MTTFQuery(scenario(7), failure_rate_per_hour=1e-5, repair_rate_per_hour=0.1)
        assert q.resolved_quorum == 4
        assert q.resolved_persistence_quorum == 4
        q2 = MTTFQuery(
            scenario(7),
            failure_rate_per_hour=1e-5,
            repair_rate_per_hour=0.1,
            quorum_size=5,
            persistence_quorum=2,
        )
        assert (q2.resolved_quorum, q2.resolved_persistence_quorum) == (5, 2)

    def test_from_afr_matches_manual_conversion(self):
        q = AvailabilityQuery.from_afr(scenario(), afr=0.08, mttr_hours=24.0)
        assert q.failure_rate_per_hour == afr_to_hourly_rate(0.08)
        assert q.repair_rate_per_hour == 1.0 / 24.0


class TestCodecs:
    def test_dict_round_trip_every_kind(self):
        base = scenario(5, 0.02, seed=7, label="row")
        queries = [
            ReliabilityQuery(base),
            AvailabilityQuery(
                base,
                failure_rate_per_hour=1e-5,
                repair_rate_per_hour=0.05,
                repair_slots=2,
                quorum_size=4,
                window_hours=720.0,
            ),
            MTTFQuery(
                base,
                failure_rate_per_hour=2e-5,
                repair_rate_per_hour=0.1,
                persistence_quorum=2,
            ),
            SimulationQuery(base, replicas=9, duration=7.5, commands=3),
        ]
        for query in queries:
            rebuilt = query_from_dict(query.to_dict())
            assert type(rebuilt) is type(query)
            assert rebuilt.to_dict() == query.to_dict()

    def test_bare_scenario_dict_becomes_reliability_query(self):
        row = scenario(3).to_dict()
        rebuilt = query_from_dict(row)
        assert isinstance(rebuilt, ReliabilityQuery)
        assert rebuilt.scenario.to_dict() == row

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidConfigurationError, match="unknown query kind"):
            query_from_dict({"kind": "fnord", "scenario": scenario(3).to_dict()})

    def test_unknown_field_rejected(self):
        data = SimulationQuery(scenario(3)).to_dict()
        data["fnord"] = 1
        with pytest.raises(InvalidConfigurationError, match="fnord"):
            query_from_dict(data)

    def test_queryset_json_shapes(self):
        mixed = QuerySet.build(
            [
                ReliabilityQuery(scenario(3, label="a")),
                MTTFQuery(
                    scenario(5, label="b"),
                    failure_rate_per_hour=1e-5,
                    repair_rate_per_hour=0.04,
                ),
            ]
        )
        round_tripped = QuerySet.from_json(mixed.to_json())
        assert round_tripped.to_dicts() == mixed.to_dicts()
        # ScenarioSet shapes remain valid query files (reliability rows).
        scenario_file = ScenarioSet.build([scenario(3), scenario(5)]).to_json()
        as_queries = QuerySet.from_json(scenario_file)
        assert all(isinstance(q, ReliabilityQuery) for q in as_queries)
        grid = QuerySet.from_json(
            '{"grid": {"protocols": ["raft"], "sizes": [3, 5], "probabilities": [0.01]}}'
        )
        assert len(grid) == 2
        with pytest.raises(InvalidConfigurationError):
            QuerySet.from_json('{"fnord": 1}')

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=9),
        rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        mu=st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
        slots=st.integers(min_value=0, max_value=4),
        window=st.none() | st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
        replicas=st.integers(min_value=1, max_value=50),
        duration=st.floats(min_value=2.0, max_value=60.0, allow_nan=False),
        commands=st.integers(min_value=0, max_value=8),
        seed=st.none() | st.integers(min_value=0, max_value=2**31),
    )
    def test_json_round_trip_property(
        self, n, rate, mu, slots, window, replicas, duration, commands, seed
    ):
        base = scenario(n, 0.01, seed=seed, label=f"n={n}")
        queries = QuerySet.build(
            [
                AvailabilityQuery(
                    base,
                    failure_rate_per_hour=rate,
                    repair_rate_per_hour=mu,
                    repair_slots=slots,
                    window_hours=window,
                ),
                MTTFQuery(
                    base,
                    failure_rate_per_hour=rate,
                    repair_rate_per_hour=mu,
                    repair_slots=slots,
                ),
                SimulationQuery(
                    base, replicas=replicas, duration=duration, commands=commands
                ),
                ReliabilityQuery(base),
            ]
        )
        rebuilt = QuerySet.from_json(queries.to_json())
        assert rebuilt.to_dicts() == queries.to_dicts()
        # the JSON form itself is stable under a second round trip
        assert json.loads(rebuilt.to_json()) == json.loads(queries.to_json())


class TestMarkovBackends:
    AFR, MTTR = 0.08, 24.0

    def test_availability_matches_builders_bit_for_bit(self):
        engine = ReliabilityEngine()
        query = AvailabilityQuery.from_afr(
            scenario(5), afr=self.AFR, mttr_hours=self.MTTR, window_hours=720.0
        )
        answer = engine.run_query(query)
        model = ClusterMarkovModel(5, afr_to_hourly_rate(self.AFR), 1.0 / self.MTTR)
        assert answer.value.availability == model.steady_state_availability(3)
        assert answer.value.window_unavailability == model.window_unavailability(3, 720.0)
        assert answer.provenance.backend == "availability"

    def test_mttf_matches_builders_bit_for_bit(self):
        engine = ReliabilityEngine()
        query = MTTFQuery.from_afr(
            scenario(7), afr=self.AFR, mttr_hours=self.MTTR, persistence_quorum=3
        )
        answer = engine.run_query(query)
        model = ClusterMarkovModel(7, afr_to_hourly_rate(self.AFR), 1.0 / self.MTTR)
        assert answer.value.mttf_hours == model.mttf_liveness(4)
        assert answer.value.mttdl_hours == model.mttdl(3)

    def test_unreachable_liveness_threshold_is_zero(self):
        # quorum > n is invalid, but quorum == n makes threshold 1; the
        # 0-threshold convention needs quorum > n which the query rejects —
        # instead pin the mttf_liveness <= 0 convention via the builders.
        model = ClusterMarkovModel(3, 1e-5, 0.1)
        assert model.mttf_liveness(3) == model.mean_time_to_failure_count(1)

    def test_same_chain_queries_batch_into_one_solve(self):
        engine = ReliabilityEngine()
        base = scenario(9)
        queries = [
            AvailabilityQuery(
                base,
                failure_rate_per_hour=1e-5,
                repair_rate_per_hour=0.04,
                quorum_size=q,
            )
            for q in (5, 6, 7, 8)
        ]
        answers = engine.run(QuerySet.build(queries))
        assert all(a.provenance.batched for a in answers)
        assert all(a.provenance.batch_size == 4 for a in answers)
        model = ClusterMarkovModel(9, 1e-5, 0.04)
        pi = model.steady_state_distribution()
        for q, a in zip((5, 6, 7, 8), answers):
            assert a.value.availability == model.steady_state_availability(q, pi=pi)
            assert a.value.availability == model.steady_state_availability(q)

    def test_markov_answers_are_memoised(self):
        engine = ReliabilityEngine()
        query = MTTFQuery.from_afr(scenario(5), afr=0.04, mttr_hours=12.0)
        first = engine.run_query(query)
        second = engine.run_query(query)
        assert not first.provenance.cache_hit
        assert second.provenance.cache_hit
        assert second.value is first.value

    def test_availability_requires_repair_at_construction(self):
        # Parse-time failure: a JSON query file omitting the repair rate is
        # rejected by QuerySet.from_json, not by a backend traceback mid-run.
        with pytest.raises(InvalidConfigurationError, match="needs μ > 0"):
            AvailabilityQuery(scenario(3), failure_rate_per_hour=1e-5)
        bad_row = {
            "kind": "availability",
            "scenario": scenario(3).to_dict(),
            "failure_rate_per_hour": 1e-5,
        }
        with pytest.raises(InvalidConfigurationError, match="needs μ > 0"):
            QuerySet.from_dicts([bad_row])


class TestSimulationBackend:
    def make_query(self, seed=42, replicas=6, **kw):
        return SimulationQuery(
            scenario(3, 0.25, seed=seed, label="campaign"),
            replicas=replicas,
            duration=6.0,
            commands=2,
            **kw,
        )

    def test_seeded_campaign_invariant_to_jobs_and_mode(self):
        baseline = ReliabilityEngine(cache_size=0).run_query(self.make_query()).value
        for policy in (
            ExecutionPolicy(mode="thread", jobs=1),
            ExecutionPolicy(mode="thread", jobs=4),
            ExecutionPolicy(mode="thread", jobs=4, shard_trials=2),
            ExecutionPolicy(mode="process", jobs=2),
        ):
            value = (
                ReliabilityEngine(cache_size=0)
                .run_query(self.make_query(), policy=policy)
                .value
            )
            assert value == baseline, policy

    def test_healthy_fleet_campaign_is_clean(self):
        answer = ReliabilityEngine().run_query(
            SimulationQuery(
                scenario(3, 0.0, seed=1), replicas=4, duration=6.0, commands=2
            )
        )
        value = answer.value
        assert value.safety_violations == 0
        assert value.liveness_violations == 0
        assert value.predicate_mismatches == 0
        assert value.safety_violation_rate.value == 0.0
        assert 0.0 <= value.liveness_violation_rate.ci_high < 1.0

    def test_seeded_campaign_is_memoised(self):
        engine = ReliabilityEngine()
        first = engine.run_query(self.make_query())
        second = engine.run_query(self.make_query())
        assert not first.provenance.cache_hit
        assert second.provenance.cache_hit
        assert second.value is first.value

    def test_unsupported_spec_raises(self):
        from repro.protocols.benor import BenOrSpec

        query = SimulationQuery(
            Scenario(spec=BenOrSpec(3), fleet=uniform_fleet(3, 0.1), seed=1),
            replicas=2,
            duration=4.0,
        )
        with pytest.raises(EstimationError, match="no simulation node factory"):
            ReliabilityEngine().run_query(query)


class TestEngineDispatch:
    def test_bare_scenarios_still_return_engine_result(self):
        engine = ReliabilityEngine()
        result = engine.run(ScenarioSet.build([scenario(3), scenario(5)]))
        assert isinstance(result, EngineResult)
        assert not isinstance(result, AnswerSet)
        # unchanged provenance strings (no backend prefix) on the legacy path
        assert result[0].provenance.describe().startswith("counting/")

    def test_mixed_queries_and_scenarios_coerce(self):
        engine = ReliabilityEngine()
        answers = engine.run(
            [
                scenario(3, label="bare"),
                MTTFQuery.from_afr(scenario(5), afr=0.08, mttr_hours=24.0),
            ]
        )
        assert isinstance(answers, AnswerSet)
        assert answers[0].kind == "reliability"
        assert answers[1].kind == "mttf"
        assert answers[0].query.label == "bare"

    def test_reliability_answers_match_scenario_path(self):
        engine = ReliabilityEngine()
        plain = engine.run([scenario(5, 0.03)])[0].result
        engine2 = ReliabilityEngine()
        answer = engine2.run(QuerySet.from_scenarios([scenario(5, 0.03)]))[0]
        assert answer.value == plain
        assert answer.provenance.backend == "reliability"

    def test_submission_order_preserved_across_kinds(self):
        engine = ReliabilityEngine()
        rows = [
            MTTFQuery.from_afr(scenario(5, label="m"), afr=0.08, mttr_hours=24.0),
            ReliabilityQuery(scenario(3, label="r")),
            AvailabilityQuery.from_afr(scenario(5, label="a"), afr=0.08, mttr_hours=24.0),
            ReliabilityQuery(scenario(7, label="r2")),
        ]
        answers = engine.run(QuerySet.build(rows))
        assert [a.kind for a in answers] == ["mttf", "reliability", "availability", "reliability"]
        assert [a.query.label for a in answers] == ["m", "r", "a", "r2"]

    def test_per_engine_backend_override(self):
        engine = ReliabilityEngine()
        marker = object()

        def fake_backend(eng, queries, policy):
            return [
                Answer(q, marker, Provenance(estimator="fake", backend="mttf"))
                for q in queries
            ]

        engine.register_backend("mttf", fake_backend)
        answer = engine.run_query(
            MTTFQuery.from_afr(scenario(5), afr=0.08, mttr_hours=24.0)
        )
        assert answer.value is marker
        # other engines are unaffected
        other = ReliabilityEngine().run_query(
            MTTFQuery.from_afr(scenario(5), afr=0.08, mttr_hours=24.0)
        )
        assert other.value is not marker

    def test_unregistered_kind_raises(self):
        from dataclasses import dataclass
        from typing import ClassVar

        @dataclass(frozen=True)
        class FnordQuery(Query):
            kind: ClassVar[str] = "fnord-unregistered"

        with pytest.raises(EstimationError, match="no backend registered"):
            ReliabilityEngine().run([FnordQuery(scenario(3))])

    def test_backend_answer_count_mismatch_raises(self):
        engine = ReliabilityEngine()
        engine.register_backend("reliability", lambda eng, queries, policy: [])
        with pytest.raises(EstimationError, match="returned 0 answers"):
            engine.run([ReliabilityQuery(scenario(3))])

    def test_answer_set_table_and_dicts(self):
        engine = ReliabilityEngine()
        answers = engine.run(
            [
                ReliabilityQuery(scenario(3, label="rel")),
                AvailabilityQuery.from_afr(
                    scenario(5, label="av"), afr=0.08, mttr_hours=24.0
                ),
            ]
        )
        table = answers.table()
        assert [row["kind"] for row in table] == ["reliability", "availability"]
        assert "availability" in table[1]["answer"]
        payload = [a.to_dict() for a in answers]
        assert payload[0]["answer"]["safe_and_live"] == pytest.approx(0.999702)
        assert payload[1]["answer"]["availability_nines"] > 5


class TestMarkovSimulateStreams:
    def test_legacy_default_unchanged(self):
        import numpy as np

        from repro.markov.simulate import sample_absorption_times

        model = ClusterMarkovModel(3, 0.01, 0.0)
        chain = model.chain(absorbing_at=2)
        legacy = sample_absorption_times(chain, 0, [2], trials=20, seed=5)
        explicit = sample_absorption_times(
            chain, 0, [2], trials=20, seed=5, sharding="legacy"
        )
        assert np.array_equal(legacy, explicit)

    def test_spawned_streams_are_prefix_stable(self):
        import numpy as np

        from repro.markov.simulate import sample_absorption_times

        model = ClusterMarkovModel(3, 0.01, 0.0)
        chain = model.chain(absorbing_at=2)
        short = sample_absorption_times(
            chain, 0, [2], trials=8, seed=5, sharding="spawn"
        )
        long = sample_absorption_times(
            chain, 0, [2], trials=16, seed=5, sharding="spawn"
        )
        assert np.array_equal(short, long[:8])
        # legacy shared-stream draws do NOT have this property
        legacy_short = sample_absorption_times(chain, 0, [2], trials=8, seed=5)
        legacy_long = sample_absorption_times(chain, 0, [2], trials=16, seed=5)
        assert np.array_equal(legacy_short, legacy_long[:8])  # prefix of same stream
        assert not np.array_equal(long, legacy_long)

    def test_empirical_availability_spawn_deterministic(self):
        from repro.markov.simulate import empirical_availability

        model = ClusterMarkovModel(3, 0.05, 0.5)
        chain = model.chain()
        a = empirical_availability(
            chain, 0, [0, 1], horizon=50.0, trials=16, seed=9, sharding="spawn"
        )
        b = empirical_availability(
            chain, 0, [0, 1], horizon=50.0, trials=16, seed=9, sharding="spawn"
        )
        assert a == b
        assert 0.0 <= a <= 1.0

    def test_lazy_spawn_matches_kernels_spawn(self):
        # The helpers spawn children one at a time; the streams must be the
        # ones kernels.spawn_shard_generators (one spawn(count)) produces.
        import numpy as np

        from repro.analysis.kernels import spawn_shard_generators
        from repro.markov.simulate import _trajectory_streams

        lazy = [rng.random(3) for rng in _trajectory_streams(17, 5, "spawn")]
        eager = [rng.random(3) for rng in spawn_shard_generators(17, 5)]
        assert all(np.array_equal(a, b) for a, b in zip(lazy, eager))

    def test_unknown_sharding_rejected(self):
        from repro.markov.simulate import sample_absorption_times

        model = ClusterMarkovModel(3, 0.01, 0.0)
        chain = model.chain(absorbing_at=2)
        with pytest.raises(InvalidConfigurationError, match="sharding"):
            sample_absorption_times(chain, 0, [2], trials=4, seed=1, sharding="fnord")
