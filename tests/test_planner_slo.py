"""Unit tests for end-to-end SLO translation."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError
from repro.planner.slo import (
    estimate_availability,
    estimate_durability,
    slo_report,
)


class TestAvailability:
    def test_components_positive(self):
        estimate = estimate_availability(
            n=5, node_afr=0.08, mean_time_to_repair_hours=24.0, election_seconds=2.0
        )
        assert estimate.quorum_loss_downtime_hours > 0
        assert estimate.election_downtime_hours > 0
        assert 0.99 < estimate.availability < 1.0

    def test_elections_dominate_for_healthy_clusters(self):
        """With fast repair, short election blips dwarf quorum loss —
        the paper's point that recovery latency drives availability."""
        estimate = estimate_availability(
            n=5, node_afr=0.04, mean_time_to_repair_hours=4.0, election_seconds=10.0
        )
        assert estimate.election_downtime_hours > estimate.quorum_loss_downtime_hours

    def test_slow_repair_flips_the_balance(self):
        estimate = estimate_availability(
            n=3, node_afr=0.3, mean_time_to_repair_hours=500.0, election_seconds=1.0
        )
        assert estimate.quorum_loss_downtime_hours > estimate.election_downtime_hours

    def test_more_nodes_less_quorum_loss(self):
        small = estimate_availability(
            n=3, node_afr=0.08, mean_time_to_repair_hours=24.0, election_seconds=2.0
        )
        large = estimate_availability(
            n=7, node_afr=0.08, mean_time_to_repair_hours=24.0, election_seconds=2.0
        )
        assert large.quorum_loss_downtime_hours < small.quorum_loss_downtime_hours

    def test_faster_elections_help(self):
        slow = estimate_availability(
            n=5, node_afr=0.08, mean_time_to_repair_hours=24.0, election_seconds=30.0
        )
        fast = estimate_availability(
            n=5, node_afr=0.08, mean_time_to_repair_hours=24.0, election_seconds=0.3
        )
        assert fast.availability > slow.availability

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            estimate_availability(
                n=0, node_afr=0.1, mean_time_to_repair_hours=24.0, election_seconds=1.0
            )
        with pytest.raises(InvalidConfigurationError):
            estimate_availability(
                n=3, node_afr=1.0, mean_time_to_repair_hours=24.0, election_seconds=1.0
            )
        with pytest.raises(InvalidConfigurationError):
            estimate_availability(
                n=3, node_afr=0.1, mean_time_to_repair_hours=0.0, election_seconds=1.0
            )


class TestDurability:
    def test_annualisation(self):
        estimate = estimate_durability(1e-9, window_hours=730.5)
        # 12 windows/year at 1e-9 each -> ~1.2e-8 annual loss.
        assert 1.0 - estimate.annual_durability == pytest.approx(1.2e-8, rel=0.01)

    def test_s3_style_nines(self):
        estimate = estimate_durability(1e-12, window_hours=730.5)
        assert estimate.durability_nines > 10.0

    def test_shorter_windows_more_exposure(self):
        coarse = estimate_durability(1e-6, window_hours=8766.0)
        fine = estimate_durability(1e-6, window_hours=730.5)
        assert fine.annual_durability < coarse.annual_durability

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            estimate_durability(2.0, window_hours=10.0)
        with pytest.raises(InvalidConfigurationError):
            estimate_durability(0.1, window_hours=0.0)


class TestReport:
    def test_summary_renders(self):
        report = slo_report(
            n=5,
            node_afr=0.08,
            mean_time_to_repair_hours=24.0,
            election_seconds=2.0,
            loss_probability_per_window=1e-9,
            window_hours=730.5,
        )
        text = report.summary()
        assert "availability" in text
        assert "durability" in text
        assert "nines" in text

    def test_end_to_end_with_analysis_pipeline(self):
        """Per-window loss from the pinned-quorum analysis feeds the SLO."""
        from repro.analysis import predicate_probability
        from repro.faults.mixture import NodeModel, heterogeneous_fleet
        from repro.protocols.reliability_aware import ReliabilityAwareRaftSpec

        fleet = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])
        spec = ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6])
        loss = 1.0 - predicate_probability(fleet, spec.is_durable)
        report = slo_report(
            n=7,
            node_afr=0.08,
            mean_time_to_repair_hours=24.0,
            election_seconds=1.0,
            loss_probability_per_window=loss,
            window_hours=730.5,
        )
        assert 2.0 < report.durability.durability_nines < 5.0
