"""Thread-safety regressions: the engine memo and the campaign journal.

PR 8 turns the engine into shared service infrastructure
(:mod:`repro.serve`), which makes two latent races load-bearing:

* the LRU memo (``ReliabilityEngine._memo`` + hit/miss counters) was
  updated without a lock — concurrent ``move_to_end``/eviction corrupts
  the ``OrderedDict`` (``KeyError``) and drops counter increments;
* ``CampaignCheckpoint.record`` opened fresh/stale journals with ``"w"``
  — a writer that loaded a stale (foreign) journal could truncate rows a
  concurrent same-campaign writer had just recorded, and a torn or
  corrupt row anywhere in the file was silently treated like a torn
  tail.

Every test here fails on the pre-PR code and pins the fixed behaviour.
"""

from __future__ import annotations

import json
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import (
    CampaignCheckpoint,
    ExecutionPolicy,
    ReliabilityEngine,
    Scenario,
    query_from_dict,
)
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec


def scenario(n=5, p=0.01, **kw):
    return Scenario(spec=RaftSpec(n), fleet=uniform_fleet(n, p), **kw)


@pytest.fixture
def tight_switching():
    """Force thread switches every ~µs so races surface in one run."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


class TestMemoThreadSafety:
    def test_concurrent_store_and_lookup_under_eviction(self, tight_switching):
        """Eviction racing ``move_to_end`` must never corrupt the memo.

        A tiny cache keeps every insert evicting while other threads
        refresh recency on the same keys; unguarded, ``move_to_end``
        raises ``KeyError`` when its key is evicted mid-call (and
        ``popitem`` can race itself).  The fix serialises every memo
        access on the engine lock.
        """
        engine = ReliabilityEngine(cache_size=4)
        keys = [("stress", i) for i in range(16)]
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def hammer(worker: int) -> None:
            try:
                barrier.wait(timeout=30)
                for round_ in range(400):
                    key = keys[(worker + round_) % len(keys)]
                    engine.cache_store(key, round_)
                    engine.cache_lookup(keys[(worker * 7 + round_) % len(keys)])
            except BaseException as error:  # noqa: BLE001 - recording for assert
                errors.append(error)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert errors == []
        info = engine.cache_info()
        assert info["size"] <= 4
        # Every lookup counted exactly once despite the contention.
        assert info["hits"] + info["misses"] == 8 * 400

    def test_hit_counter_is_exact_under_contention(self, tight_switching):
        """Lost-update check: N threads x M hits must count N*M.

        Unguarded ``cache_hits += 1`` is a read-modify-write; under
        contention increments vanish and the /metrics hit rate lies.
        """
        engine = ReliabilityEngine(cache_size=8)
        engine.cache_store(("hot", 1), "value")
        barrier = threading.Barrier(8)

        def hit(_worker: int) -> None:
            barrier.wait(timeout=30)
            for _ in range(500):
                assert engine.cache_lookup(("hot", 1)) == "value"

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hit, range(8)))
        assert engine.cache_hits == 8 * 500
        assert engine.cache_misses == 0

    def test_concurrent_runs_share_one_engine_bit_identically(self):
        """Many threads through one warm engine = the serial answers."""
        queries = [
            query_from_dict(
                {"kind": "reliability", "scenario": scenario(n, 0.01).to_dict()}
            )
            for n in (3, 5, 7)
        ]
        policy = ExecutionPolicy.for_service(1, checkpoint_dir=None)
        reference = [
            answer.to_dict()["answer"]
            for answer in ReliabilityEngine().run(queries, policy=policy)
        ]
        engine = ReliabilityEngine()

        def run_all(_worker: int):
            return [
                answer.to_dict()["answer"]
                for answer in engine.run(queries, policy=policy)
            ]

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(run_all, range(12)))
        assert all(result == reference for result in results)


class TestJournalDurability:
    def _checkpoint(self, path, *, key="campaign-a", shards=4):
        return CampaignCheckpoint(path, key=key, shards=shards)

    def test_stale_truncation_race_keeps_concurrent_rows(self, tmp_path):
        """The deterministic schedule the ``"w"``-mode journal lost on.

        Both writers of campaign B load while a foreign (campaign A)
        journal holds the path, so both mark it stale.  Writer 1 rewrites
        the file with shard 0; writer 2, still thinking the file is
        foreign, must *re-probe* before replacing — pre-PR it truncated
        writer 1's row away.
        """
        path = tmp_path / "journal.jsonl"
        foreign = self._checkpoint(path, key="campaign-a")
        foreign.load()
        foreign.record(0, "foreign-row")

        writer1 = self._checkpoint(path, key="campaign-b")
        writer2 = self._checkpoint(path, key="campaign-b")
        assert writer1.load() == {}
        assert writer2.load() == {}  # both saw the foreign journal
        writer1.record(0, "b0")
        writer2.record(1, "b1")

        resumed = self._checkpoint(path, key="campaign-b").load()
        assert resumed == {0: "b0", 1: "b1"}

    def test_concurrent_records_all_survive(self, tmp_path, tight_switching):
        """Parallel same-campaign writers never lose each other's rows."""
        path = tmp_path / "journal.jsonl"
        shards = 32
        barrier = threading.Barrier(8)

        def record(index: int) -> None:
            checkpoint = self._checkpoint(path, shards=shards)
            checkpoint.load()
            barrier.wait(timeout=30)
            for shard in range(index, shards, 8):
                checkpoint.record(shard, f"row-{shard}")

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(record, range(8)))
        loaded = self._checkpoint(path, shards=shards).load()
        assert loaded == {shard: f"row-{shard}" for shard in range(shards)}

    def test_mid_file_corruption_discards_journal(self, tmp_path):
        """A malformed row *before* the tail is corruption, not a torn write.

        Pre-PR, ``load`` skipped any undecodable line and resumed from
        whatever rows happened to parse — silently trusting a damaged
        journal.  Now only the final line may be torn; anything earlier
        discards the file, and the next ``record`` rewrites it.
        """
        path = tmp_path / "journal.jsonl"
        checkpoint = self._checkpoint(path)
        checkpoint.load()
        checkpoint.record(0, "alpha")
        checkpoint.record(1, "beta")
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # damage a non-final row
        path.write_text("\n".join(lines) + "\n")

        fresh = self._checkpoint(path)
        assert fresh.load() == {}
        fresh.record(2, "gamma")  # rewrites the journal from scratch
        assert self._checkpoint(path).load() == {2: "gamma"}

    def test_torn_final_line_keeps_fsynced_prefix(self, tmp_path):
        """An interrupted last write loses only itself."""
        path = tmp_path / "journal.jsonl"
        checkpoint = self._checkpoint(path)
        checkpoint.load()
        checkpoint.record(0, "alpha")
        checkpoint.record(1, "beta")
        with path.open("a") as handle:
            handle.write('{"shard": 2, "val')  # torn mid-write
        assert self._checkpoint(path).load() == {0: "alpha", 1: "beta"}

    def test_out_of_range_shard_mid_file_discards_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        checkpoint = self._checkpoint(path, shards=2)
        checkpoint.load()
        checkpoint.record(0, "alpha")
        with path.open("a") as handle:
            handle.write(json.dumps({"shard": 99, "value": "bogus"}) + "\n")
            handle.write(json.dumps({"shard": 1, "value": "beta"}) + "\n")
        assert self._checkpoint(path, shards=2).load() == {}

    def test_oversized_journal_is_refused(self, tmp_path, monkeypatch):
        path = tmp_path / "journal.jsonl"
        checkpoint = self._checkpoint(path)
        checkpoint.load()
        checkpoint.record(0, "alpha")
        monkeypatch.setattr(CampaignCheckpoint, "MAX_JOURNAL_BYTES", 8)
        fresh = self._checkpoint(path)
        assert fresh.load() == {}
        fresh.record(1, "beta")  # rewrites rather than appending to a monster
        monkeypatch.setattr(CampaignCheckpoint, "MAX_JOURNAL_BYTES", 1 << 26)
        assert self._checkpoint(path).load() == {1: "beta"}

    def test_duplicate_header_from_racing_first_writes_is_benign(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        checkpoint = self._checkpoint(path)
        checkpoint.load()
        checkpoint.record(0, "alpha")
        header = path.read_text().splitlines()[0]
        with path.open("a") as handle:
            handle.write(header + "\n")
            handle.write(json.dumps({"shard": 1, "value": "beta"}) + "\n")
        assert self._checkpoint(path).load() == {0: "alpha", 1: "beta"}
