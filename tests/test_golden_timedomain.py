"""Golden snapshots for the time-domain (availability/MTTF) answers.

Pins two things at once, in the style of ``test_golden_tables.py``:

* **legacy-vs-engine bit-identity** — for every grid cell the engine's
  ``AvailabilityQuery``/``MTTFQuery`` answers are compared ``==`` (not
  approximately) against direct :mod:`repro.markov.builders` calls, the
  PR 4 acceptance criterion;
* **value stability** — the numbers themselves are frozen in
  ``tests/data/golden_timedomain.json`` and future refactors must
  reproduce them within ``TOLERANCE``.

Regenerate deliberately (after an *intentional* numeric change) with::

    PYTHONPATH=src python tests/test_golden_timedomain.py --regenerate
"""

from __future__ import annotations

import json
import math
import pathlib

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
GOLDEN_PATH = DATA_DIR / "golden_timedomain.json"

#: Snapshot comparisons allow tiny cross-platform FP variance, nothing more.
TOLERANCE = 1e-12

SIZES = (3, 5, 7, 9)
AFRS = (0.04, 0.08)
MTTR_HOURS = 24.0
WINDOW_HOURS = 720.0


def _cells():
    for n in SIZES:
        for afr in AFRS:
            yield n, afr


def compute_golden() -> dict:
    """Direct-builder values for the grid (the legacy side of the pin)."""
    from repro.faults.afr import afr_to_hourly_rate
    from repro.markov.builders import ClusterMarkovModel

    rows = {}
    for n, afr in _cells():
        model = ClusterMarkovModel(n, afr_to_hourly_rate(afr), 1.0 / MTTR_HOURS)
        quorum = n // 2 + 1
        rows[f"n={n}/afr={afr}"] = {
            "n": n,
            "afr": afr,
            "quorum": quorum,
            "availability": model.steady_state_availability(quorum),
            "window_unavailability": model.window_unavailability(quorum, WINDOW_HOURS),
            "mttf_hours": model.mttf_liveness(quorum),
            "mttdl_hours": model.mttdl(quorum),
        }
    return {
        "mttr_hours": MTTR_HOURS,
        "window_hours": WINDOW_HOURS,
        "cells": rows,
    }


def engine_answers() -> dict:
    """The same grid answered through the engine's Query front door."""
    from repro.engine import (
        AvailabilityQuery,
        MTTFQuery,
        QuerySet,
        ReliabilityEngine,
        Scenario,
    )
    from repro.faults.mixture import uniform_fleet
    from repro.protocols.raft import RaftSpec

    queries = []
    for n, afr in _cells():
        scenario = Scenario(
            spec=RaftSpec(n), fleet=uniform_fleet(n, afr), label=f"n={n}/afr={afr}"
        )
        queries.append(
            AvailabilityQuery.from_afr(
                scenario, afr=afr, mttr_hours=MTTR_HOURS, window_hours=WINDOW_HOURS
            )
        )
        queries.append(MTTFQuery.from_afr(scenario, afr=afr, mttr_hours=MTTR_HOURS))
    answers = ReliabilityEngine().run(QuerySet.build(queries))
    rows = {}
    for availability, mttf in zip(answers[0::2], answers[1::2]):
        label = availability.query.label
        rows[label] = {
            "availability": availability.value.availability,
            "window_unavailability": availability.value.window_unavailability,
            "mttf_hours": mttf.value.mttf_hours,
            "mttdl_hours": mttf.value.mttdl_hours,
        }
    return rows


class TestGoldenTimeDomain:
    def test_engine_bit_identical_to_builders(self):
        golden = compute_golden()["cells"]
        engine = engine_answers()
        for label, cell in golden.items():
            row = engine[label]
            for field in (
                "availability",
                "window_unavailability",
                "mttf_hours",
                "mttdl_hours",
            ):
                assert row[field] == cell[field], (label, field)

    def test_snapshot_values_stable(self):
        assert GOLDEN_PATH.exists(), (
            "golden time-domain snapshot missing; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_timedomain.py --regenerate`"
        )
        frozen = json.loads(GOLDEN_PATH.read_text())
        current = compute_golden()
        assert frozen["mttr_hours"] == current["mttr_hours"]
        assert frozen["window_hours"] == current["window_hours"]
        assert set(frozen["cells"]) == set(current["cells"])
        for label, cell in current["cells"].items():
            for field, value in cell.items():
                expected = frozen["cells"][label][field]
                if isinstance(value, float):
                    assert math.isclose(
                        value, expected, rel_tol=TOLERANCE, abs_tol=TOLERANCE
                    ), (label, field, value, expected)
                else:
                    assert value == expected, (label, field)


def main() -> None:
    import sys

    if "--regenerate" not in sys.argv:
        raise SystemExit("pass --regenerate to overwrite the golden snapshot")
    GOLDEN_PATH.write_text(json.dumps(compute_golden(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
