"""Golden snapshot tests for the paper-table and horizon-sweep outputs.

The fixtures under ``tests/data/`` freeze the numbers this repository
produced when the snapshots were taken (post-engine, post-kernel — the
values every PR since has asserted bit-identical).  Future refactors must
reproduce them within ``TOLERANCE``; the CLI's formatted Table 2 text is
additionally compared verbatim, because the rendered tables are the
paper-facing artifact.

Regenerate deliberately (after an *intentional* numeric change) with::

    PYTHONPATH=src python tests/test_golden_tables.py --regenerate
"""

from __future__ import annotations

import io
import json
import math
import pathlib
from contextlib import redirect_stdout

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
TABLE2_PATH = DATA_DIR / "golden_table2.json"
HORIZON_PATH = DATA_DIR / "golden_horizon.json"

#: Snapshot comparisons allow tiny cross-platform FP variance, nothing more.
TOLERANCE = 1e-12

TABLE2_SIZES = (3, 5, 7, 9)
TABLE2_PROBABILITIES = (0.01, 0.02, 0.04, 0.08)

HORIZON_WINDOW_HOURS = 720.0
HORIZON_WINDOWS = 12
HORIZON_SHAPE = 4.0
HORIZON_SCALE_HOURS = 20_000.0
HORIZON_NODES = 5


def compute_table2() -> dict:
    """Table 2 values plus the CLI's verbatim rendering."""
    from repro.analysis import analyze_batch
    from repro.cli import main
    from repro.faults.mixture import uniform_fleet
    from repro.protocols.raft import RaftSpec

    values = {}
    for n in TABLE2_SIZES:
        results = analyze_batch(
            RaftSpec(n), [uniform_fleet(n, p) for p in TABLE2_PROBABILITIES]
        )
        values[str(n)] = {
            f"{p:g}": result.safe_and_live.value
            for p, result in zip(TABLE2_PROBABILITIES, results)
        }
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert main(["table2"]) == 0
    return {"values": values, "cli_text": buffer.getvalue()}


def compute_horizon() -> dict:
    """An aging-fleet horizon sweep (wear-out Weibull curves)."""
    from repro.analysis.horizon import horizon_survival, reliability_over_horizon
    from repro.faults.curves import WeibullCurve
    from repro.protocols.raft import RaftSpec

    curves = [
        WeibullCurve(shape=HORIZON_SHAPE, scale_hours=HORIZON_SCALE_HOURS)
    ] * HORIZON_NODES
    points = reliability_over_horizon(
        RaftSpec, curves, window_hours=HORIZON_WINDOW_HOURS, n_windows=HORIZON_WINDOWS
    )
    survival = horizon_survival(
        RaftSpec, curves, window_hours=HORIZON_WINDOW_HOURS, n_windows=HORIZON_WINDOWS
    )
    return {
        "safe_and_live": [p.safe_and_live for p in points],
        "start_hours": [p.start_hours for p in points],
        "survival": survival,
    }


def _assert_close(actual: float, expected: float, label: str) -> None:
    assert math.isclose(actual, expected, rel_tol=TOLERANCE, abs_tol=TOLERANCE), (
        f"{label}: {actual!r} drifted from golden {expected!r} "
        f"(delta {actual - expected:.3e})"
    )


class TestGoldenTable2:
    def test_values_match_snapshot(self):
        golden = json.loads(TABLE2_PATH.read_text())
        current = compute_table2()
        for n, row in golden["values"].items():
            for p, expected in row.items():
                _assert_close(
                    current["values"][n][p], expected, f"table2 n={n} p={p}"
                )

    def test_cli_rendering_matches_snapshot(self):
        golden = json.loads(TABLE2_PATH.read_text())
        assert compute_table2()["cli_text"] == golden["cli_text"]


class TestGoldenHorizon:
    def test_window_series_matches_snapshot(self):
        golden = json.loads(HORIZON_PATH.read_text())
        current = compute_horizon()
        assert current["start_hours"] == golden["start_hours"]
        for index, (actual, expected) in enumerate(
            zip(current["safe_and_live"], golden["safe_and_live"])
        ):
            _assert_close(actual, expected, f"horizon window[{index}]")
        _assert_close(current["survival"], golden["survival"], "horizon survival")

    def test_series_is_monotonically_aging(self):
        # Sanity on the fixture itself: wear-out curves must decline.
        golden = json.loads(HORIZON_PATH.read_text())
        series = golden["safe_and_live"]
        assert series == sorted(series, reverse=True)


def _regenerate() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    TABLE2_PATH.write_text(json.dumps(compute_table2(), indent=2) + "\n")
    HORIZON_PATH.write_text(json.dumps(compute_horizon(), indent=2) + "\n")
    print(f"rewrote {TABLE2_PATH} and {HORIZON_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
