"""Unit tests for Upright and stake-weighted specs."""

from __future__ import annotations

import pytest

from repro.analysis.config import FailureConfig, FaultKind
from repro.analysis.counting import counting_reliability
from repro.analysis.exact import exact_reliability
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import Fleet, NodeModel, uniform_fleet
from repro.protocols.hybrid import StakeWeightedSpec, UprightSpec
from repro.protocols.raft import RaftSpec


class TestUpright:
    def test_cluster_sizing(self):
        spec = UprightSpec(u=2, r=1)
        assert spec.n == 6

    def test_for_cluster_round_trip(self):
        spec = UprightSpec.for_cluster(6, r=1)
        assert (spec.u, spec.r) == (2, 1)

    def test_for_cluster_infeasible(self):
        with pytest.raises(InvalidConfigurationError):
            UprightSpec.for_cluster(3, r=2)

    def test_safety_tolerates_crashes_not_byzantine(self):
        spec = UprightSpec(u=2, r=1)
        assert spec.is_safe_counts(6, 0)  # crashes never break safety
        assert spec.is_safe_counts(0, 1)
        assert not spec.is_safe_counts(0, 2)

    def test_liveness_budget_is_total(self):
        spec = UprightSpec(u=2, r=1)
        assert spec.is_live_counts(2, 0)
        assert spec.is_live_counts(1, 1)
        assert not spec.is_live_counts(2, 1)

    def test_r_zero_is_cft(self):
        """Upright with r=0 has Raft's failure envelope at the same n."""
        spec = UprightSpec(u=2, r=0)  # n = 5
        raft = RaftSpec(5)
        fleet = uniform_fleet(5, 0.05)
        upright = counting_reliability(spec, fleet)
        vanilla = counting_reliability(raft, fleet)
        assert upright.live.value == pytest.approx(vanilla.live.value)

    def test_mixture_analysis_rewards_byzantine_budget(self):
        """With real Byzantine mass, r=1 beats r=0 on safety (paper §2.4)."""
        fleet = Fleet((NodeModel(0.03, 0.005),) * 6)
        tolerant = counting_reliability(UprightSpec(u=2, r=1), fleet)
        # Compare against a CFT spec of the same size: any Byzantine node
        # breaks it.
        cft = counting_reliability(RaftSpec(6), fleet)
        assert tolerant.safe.value > cft.safe.value

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            UprightSpec(u=1, r=2)
        with pytest.raises(InvalidConfigurationError):
            UprightSpec(u=-1, r=0)


class TestStakeWeighted:
    def test_quorum_by_stake(self):
        spec = StakeWeightedSpec([60.0, 20.0, 20.0])
        assert spec.is_quorum(frozenset({0}))
        assert not spec.is_quorum(frozenset({1, 2}))  # exactly 40 < 50+

    def test_whale_failure_stalls(self):
        spec = StakeWeightedSpec([60.0, 20.0, 20.0])
        config = FailureConfig.from_failed_indices(3, [0])
        assert not spec.is_live(config)
        # But losing both minnows is survivable.
        config2 = FailureConfig.from_failed_indices(3, [1, 2])
        assert spec.is_live(config2)

    def test_safety_structural_at_majority_threshold(self):
        spec = StakeWeightedSpec([1.0, 1.0, 1.0])
        assert spec.is_safe(FailureConfig.all_correct(3))
        byz = FailureConfig.from_failed_indices(3, [0], kind=FaultKind.BYZANTINE)
        assert not spec.is_safe(byz)

    def test_equal_stake_matches_majority_raft_liveness(self):
        stakes = [1.0] * 5
        spec = StakeWeightedSpec(stakes)
        fleet = uniform_fleet(5, 0.1)
        weighted = exact_reliability(spec, fleet)
        vanilla = counting_reliability(RaftSpec(5), fleet)
        assert weighted.live.value == pytest.approx(vanilla.live.value)

    def test_concentration_hurts_reliability(self):
        """Same node quality: concentrated stake is less live (paper §2.1)."""
        fleet = uniform_fleet(5, 0.1)
        flat = exact_reliability(StakeWeightedSpec([1.0] * 5), fleet)
        whale = exact_reliability(StakeWeightedSpec([10.0, 1.0, 1.0, 1.0, 1.0]), fleet)
        assert whale.live.value < flat.live.value

    def test_nakamoto_coefficient(self):
        assert StakeWeightedSpec([60.0, 20.0, 20.0]).nakamoto_coefficient() == 1
        assert StakeWeightedSpec([1.0] * 5).nakamoto_coefficient() == 3

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            StakeWeightedSpec([])
        with pytest.raises(InvalidConfigurationError):
            StakeWeightedSpec([1.0, -1.0])
        with pytest.raises(InvalidConfigurationError):
            StakeWeightedSpec([1.0], threshold_fraction=1.5)
