"""Property-based tests for the extension modules.

Laws for sensitivity analysis, horizon chaining, hybrid thresholds,
committee planning, the SLO translation and tree quorums.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.counting import counting_reliability
from repro.analysis.horizon import horizon_survival, reliability_over_horizon
from repro.analysis.sensitivity import birnbaum_importance
from repro.faults.curves import ConstantHazard
from repro.faults.mixture import Fleet, NodeModel, uniform_fleet
from repro.planner.committee import committee_reliability
from repro.planner.slo import estimate_availability, estimate_durability
from repro.protocols.hybrid import StakeWeightedSpec, UprightSpec
from repro.protocols.raft import RaftSpec
from repro.quorums.tree import TreeQuorums

small_p = st.floats(min_value=0.001, max_value=0.3, allow_nan=False)


class TestSensitivityLaws:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=3), small_p)
    def test_importance_bounded(self, half_n, p):
        n = 2 * half_n + 1
        fleet = uniform_fleet(n, p)
        importance = birnbaum_importance(RaftSpec(n), fleet, 0, metric="live")
        assert 0.0 <= importance <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(small_p, small_p)
    def test_worse_peers_raise_pivotality(self, p_low, p_high):
        """A node matters more when its peers are closer to the threshold."""
        assume(p_high > p_low + 0.05)
        healthy = Fleet((NodeModel(0.01),) + (NodeModel(p_low),) * 4)
        strained = Fleet((NodeModel(0.01),) + (NodeModel(p_high),) * 4)
        b_healthy = birnbaum_importance(RaftSpec(5), healthy, 0, metric="live")
        b_strained = birnbaum_importance(RaftSpec(5), strained, 0, metric="live")
        assert b_strained >= b_healthy - 1e-12


class TestHorizonLaws:
    @settings(max_examples=15, deadline=None)
    @given(small_p, st.integers(min_value=1, max_value=8))
    def test_survival_decreases_with_horizon(self, p, windows):
        curves = [ConstantHazard.from_window_probability(p, 720.0)] * 5
        short = horizon_survival(RaftSpec, curves, window_hours=720.0, n_windows=windows)
        long = horizon_survival(RaftSpec, curves, window_hours=720.0, n_windows=windows + 1)
        assert long <= short + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(small_p)
    def test_series_matches_direct_computation(self, p):
        curves = [ConstantHazard.from_window_probability(p, 720.0)] * 3
        points = reliability_over_horizon(RaftSpec, curves, window_hours=720.0, n_windows=2)
        direct = counting_reliability(RaftSpec(3), uniform_fleet(3, p))
        assert points[0].safe_and_live == pytest.approx(direct.safe_and_live.value, rel=1e-9)


class TestUprightLaws:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=3), small_p)
    def test_safety_never_below_liveness_budget_constraints(self, u, r, p):
        assume(r <= u)
        spec = UprightSpec(u, r)
        fleet = uniform_fleet(spec.n, p, byzantine_fraction=0.3)
        result = counting_reliability(spec, fleet)
        assert 0.0 <= result.safe_and_live.value <= min(result.safe.value, result.live.value) + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=3), small_p)
    def test_byzantine_budget_monotone_in_r(self, u, p):
        """More Byzantine budget (same n is impossible; compare same u)."""
        fleet_small = uniform_fleet(UprightSpec(u, 0).n, p, byzantine_fraction=0.5)
        fleet_big = uniform_fleet(UprightSpec(u, u).n, p, byzantine_fraction=0.5)
        safe_small = counting_reliability(UprightSpec(u, 0), fleet_small).safe.value
        safe_big = counting_reliability(UprightSpec(u, u), fleet_big).safe.value
        assert safe_big >= safe_small - 1e-9


class TestStakeLaws:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=7))
    def test_nakamoto_bounds(self, stakes):
        spec = StakeWeightedSpec(stakes)
        coefficient = spec.nakamoto_coefficient()
        assert 1 <= coefficient <= len(stakes)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=7))
    def test_full_correct_set_is_quorum(self, stakes):
        spec = StakeWeightedSpec(stakes)
        assert spec.is_quorum(frozenset(range(len(stakes))))


class TestCommitteeLaws:
    @settings(max_examples=10, deadline=None)
    @given(small_p, st.integers(min_value=1, max_value=3))
    def test_bigger_committee_more_reliable_for_reliable_pool(self, p, half_k):
        assume(p < 0.2)
        fleet = uniform_fleet(50, p)
        small = committee_reliability(RaftSpec, fleet, 2 * half_k + 1)
        large = committee_reliability(RaftSpec, fleet, 2 * half_k + 3)
        assert large.safe_and_live >= small.safe_and_live - 1e-12


class TestSLOLaws:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.001, max_value=0.5),
        st.floats(min_value=1.0, max_value=500.0),
    )
    def test_availability_in_unit_interval(self, afr, mttr):
        estimate = estimate_availability(
            n=5, node_afr=afr, mean_time_to_repair_hours=mttr, election_seconds=2.0
        )
        assert 0.0 <= estimate.availability <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1e-3), st.floats(min_value=24.0, max_value=8766.0))
    def test_durability_monotone_in_window_loss(self, loss, window):
        lower = estimate_durability(loss, window_hours=window)
        higher = estimate_durability(min(1.0, loss * 2 + 1e-12), window_hours=window)
        assert higher.annual_durability <= lower.annual_durability + 1e-15


class TestTreeQuorumLaws:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=4), st.data())
    def test_monotone_membership(self, depth, data):
        tree = TreeQuorums(depth)
        members = data.draw(
            st.sets(st.integers(min_value=0, max_value=tree.n - 1), max_size=tree.n)
        )
        extra = data.draw(st.integers(min_value=0, max_value=tree.n - 1))
        if tree.is_quorum(frozenset(members)):
            assert tree.is_quorum(frozenset(members) | {extra})
