"""Unit tests for probabilistic quorums, committees and intersection maths."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.errors import InvalidConfigurationError
from repro.quorums.committee import (
    CommitteeReliability,
    committee_faulty_count_pmf,
    prob_committee_all_faulty,
    prob_committee_contains_correct,
    prob_committee_fraction_safe,
    required_committee_size,
    sample_committee,
    smallest_bft_committee,
)
from repro.quorums.intersection import (
    enumerate_threshold_pair_property,
    prob_failure_count_reaches,
    prob_fixed_quorum_wiped_out,
    prob_random_quorums_overlap,
    prob_random_quorums_overlap_in_correct,
    prob_threshold_pair_intersects_in_correct,
)
from repro.quorums.probabilistic import (
    ProbabilisticQuorums,
    minimum_quorum_size_for_correct_intersection,
    minimum_quorum_size_for_intersection,
)


class TestProbabilisticQuorums:
    def test_sqrt_sizing(self):
        system = ProbabilisticQuorums.sqrt_sized(100)
        assert system.k == 10

    def test_overlap_pmf_sums_to_one(self):
        pmf = ProbabilisticQuorums(20, 6).overlap_pmf()
        assert sum(pmf) == pytest.approx(1.0)

    def test_intersection_probability_closed_form(self):
        n, k = 12, 4
        system = ProbabilisticQuorums(n, k)
        expected = 1.0 - math.comb(n - k, k) / math.comb(n, k)
        assert system.intersection_probability() == pytest.approx(expected)

    def test_intersection_monotone_in_k(self):
        values = [ProbabilisticQuorums(50, k).intersection_probability() for k in (3, 7, 12)]
        assert values == sorted(values)

    def test_correct_intersection_below_plain(self):
        system = ProbabilisticQuorums(30, 8)
        assert system.intersection_in_correct_probability(0.2) < system.intersection_probability()

    def test_correct_intersection_zero_failure_equals_plain(self):
        system = ProbabilisticQuorums(30, 8)
        assert system.intersection_in_correct_probability(0.0) == pytest.approx(
            system.intersection_probability()
        )

    def test_correct_intersection_monte_carlo(self):
        system = ProbabilisticQuorums(15, 5)
        p_fail = 0.3
        rng = np.random.default_rng(0)
        hits = 0
        trials = 30_000
        for _ in range(trials):
            q1 = system.sample_quorum(rng)
            q2 = system.sample_quorum(rng)
            overlap = q1 & q2
            if overlap and any(rng.random() >= p_fail for _ in overlap):
                # sample correctness lazily: each overlap node correct w.p. 0.7
                hits += 1
        # Statistical agreement within 3 sigma.
        expected = system.intersection_in_correct_probability(p_fail)
        stderr = math.sqrt(expected * (1 - expected) / trials)
        assert abs(hits / trials - expected) < 5 * stderr + 0.01

    def test_sample_quorum_size_and_range(self):
        system = ProbabilisticQuorums(10, 4)
        quorum = system.sample_quorum(seed=1)
        assert len(quorum) == 4
        assert all(0 <= i < 10 for i in quorum)

    def test_sizing_functions(self):
        k = minimum_quorum_size_for_intersection(100, 3.0)
        assert ProbabilisticQuorums(100, k).intersection_probability() >= 0.999
        assert (
            ProbabilisticQuorums(100, k - 1).intersection_probability() < 0.999
            if k > 1
            else True
        )
        kc = minimum_quorum_size_for_correct_intersection(100, 0.05, 3.0)
        assert kc >= k


class TestCommittee:
    def test_paper_ten_nines_example(self):
        assert prob_committee_all_faulty(0.01, 5) == pytest.approx(1e-10)

    def test_contains_correct_complement(self):
        assert prob_committee_contains_correct(0.2, 3) == pytest.approx(1 - 0.008)

    def test_hypergeometric_pmf(self):
        pmf = committee_faulty_count_pmf(10, 4, 3)
        assert sum(pmf) == pytest.approx(1.0)
        expected_all_faulty = math.comb(4, 3) / math.comb(10, 3)
        assert pmf[3] == pytest.approx(expected_all_faulty)

    def test_fraction_safe(self):
        # Committee of 3 from 10 nodes with 4 faulty; safe if < 1/3 faulty,
        # i.e. zero faulty members.
        p = prob_committee_fraction_safe(10, 4, 3)
        expected = math.comb(6, 3) / math.comb(10, 3)
        assert p == pytest.approx(expected)

    def test_required_size_closed_form(self):
        assert required_committee_size(0.01, 10.0) == 5
        assert required_committee_size(0.1, 3.0) == 3

    def test_committee_reliability_binomial(self):
        from scipy import stats

        committee = CommitteeReliability(100, 9, 0.05, 1.0 / 3.0)
        expected = float(stats.binom.cdf(2, 9, 0.05))
        assert committee.probability_committee_ok() == pytest.approx(expected)

    def test_smallest_bft_committee_monotone(self):
        small = smallest_bft_committee(0.01, 3.0)
        large = smallest_bft_committee(0.01, 6.0)
        assert large >= small

    def test_sample_committee_distinct(self):
        committee = sample_committee(20, 8, seed=2)
        assert len(committee) == 8

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            prob_committee_all_faulty(1.2, 3)
        with pytest.raises(InvalidConfigurationError):
            required_committee_size(0.0, 3.0)
        with pytest.raises(InvalidConfigurationError):
            sample_committee(5, 9)


class TestIntersection:
    def test_overlap_probability_hypergeometric(self):
        n, k1, k2 = 10, 4, 5
        expected = 1.0 - math.comb(n - k1, k2) / math.comb(n, k2)
        assert prob_random_quorums_overlap(n, k1, k2) == pytest.approx(expected)

    def test_overlap_in_correct_bounded_by_overlap(self):
        assert prob_random_quorums_overlap_in_correct(20, 6, 6, 0.3) < prob_random_quorums_overlap(
            20, 6, 6
        )

    def test_fixed_quorum_wipeout_product(self):
        assert prob_fixed_quorum_wiped_out([0.1, 0.2, 0.5]) == pytest.approx(0.01)

    def test_failure_count_tail(self):
        from scipy import stats

        assert prob_failure_count_reaches(100, 0.1, 10) == pytest.approx(
            float(stats.binom.sf(9, 100, 0.1))
        )
        assert prob_failure_count_reaches(10, 0.1, 0) == 1.0
        assert prob_failure_count_reaches(10, 0.1, 11) == 0.0

    def test_threshold_pair_formula_against_bruteforce(self):
        """The count criterion must match exhaustive quorum enumeration."""
        n, k1, k2 = 5, 4, 4
        slack = k1 + k2 - n  # 3
        for n_failed in range(n + 1):
            failed = frozenset(range(n_failed))
            brute = enumerate_threshold_pair_property(failed, n, k1, k2)
            assert brute == (n_failed < slack), f"failed={n_failed}"

    def test_threshold_pair_probability(self):
        from scipy import stats

        # P(#failed < slack) with slack = 3 at n=5, p=0.2.
        p = prob_threshold_pair_intersects_in_correct([0.2] * 5, 4, 4)
        assert p == pytest.approx(float(stats.binom.cdf(2, 5, 0.2)))

    def test_non_overlapping_sizes_always_violable(self):
        assert prob_threshold_pair_intersects_in_correct([0.01] * 10, 3, 3) == 0.0
