"""Unit tests for the exact enumerator."""

from __future__ import annotations

import pytest

from repro.analysis.counting import counting_reliability
from repro.analysis.exact import (
    configuration_count,
    enumerate_configurations,
    exact_reliability,
    worst_configurations,
)
from repro.errors import EstimationError, InvalidConfigurationError
from repro.faults.mixture import Fleet, NodeModel, uniform_fleet
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec


class TestEnumeration:
    def test_configuration_count_cft(self):
        assert configuration_count(uniform_fleet(5, 0.1)) == 32

    def test_configuration_count_with_byzantine(self):
        fleet = Fleet((NodeModel(0.1, 0.05),) * 3)
        assert configuration_count(fleet) == 27

    def test_zero_probability_outcomes_pruned(self):
        fleet = Fleet((NodeModel(0.0, 0.0), NodeModel(0.5, 0.0)))
        assert configuration_count(fleet) == 2

    def test_probabilities_sum_to_one(self, byz_mixture_fleet):
        total = sum(p for _, p in enumerate_configurations(byz_mixture_fleet))
        assert total == pytest.approx(1.0)

    def test_budget_enforced(self):
        fleet = uniform_fleet(30, 0.5)
        with pytest.raises(EstimationError):
            list(enumerate_configurations(fleet, max_configs=100))


class TestExactReliability:
    def test_agrees_with_counting_raft(self, mixed_fleet):
        spec = RaftSpec(7)
        exact = exact_reliability(spec, mixed_fleet)
        counted = counting_reliability(spec, mixed_fleet)
        assert exact.safe.value == pytest.approx(counted.safe.value)
        assert exact.live.value == pytest.approx(counted.live.value)
        assert exact.safe_and_live.value == pytest.approx(counted.safe_and_live.value)

    def test_agrees_with_counting_pbft_mixture(self, byz_mixture_fleet):
        spec = PBFTSpec(5)
        exact = exact_reliability(spec, byz_mixture_fleet)
        counted = counting_reliability(spec, byz_mixture_fleet)
        assert exact.safe.value == pytest.approx(counted.safe.value)
        assert exact.live.value == pytest.approx(counted.live.value)

    def test_size_mismatch(self, small_cft_fleet):
        with pytest.raises(InvalidConfigurationError):
            exact_reliability(RaftSpec(4), small_cft_fleet)


class TestWorstConfigurations:
    def test_most_probable_liveness_violation(self):
        # 3-node Raft at 1%: the top liveness violations are the three
        # two-node failure patterns.
        fleet = uniform_fleet(3, 0.01)
        worst = worst_configurations(RaftSpec(3), fleet, predicate="live", limit=3)
        assert len(worst) == 3
        assert all(config.num_failed == 2 for config, _ in worst)

    def test_heterogeneous_ranking_prefers_flaky_nodes(self, mixed_fleet):
        worst = worst_configurations(RaftSpec(7), mixed_fleet, predicate="live", limit=1)
        config, probability = worst[0]
        # The most probable violation kills 4 of the 8% nodes (indices 0-3).
        assert config.failed_indices == {0, 1, 2, 3}
        assert probability == pytest.approx((0.08**4) * (0.99**3))

    def test_unknown_predicate(self, small_cft_fleet):
        with pytest.raises(InvalidConfigurationError):
            worst_configurations(RaftSpec(3), small_cft_fleet, predicate="nope")

    def test_raft_safety_never_violated(self, small_cft_fleet):
        worst = worst_configurations(RaftSpec(3), small_cft_fleet, predicate="safe")
        assert worst == []
