"""Unit tests for the probability-native planning toolbox."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError
from repro.faults.curves import ConstantHazard, WeibullCurve
from repro.faults.mixture import Fleet, NodeModel, uniform_fleet
from repro.planner.cost import (
    DEFAULT_PRICE_BOOK,
    RELIABLE_SKU,
    SPOT_SKU,
    DeploymentPlan,
    NodeSKU,
    cost_ratio,
)
from repro.planner.detector import PhiAccrualDetector
from repro.planner.leader import (
    compare_leader_policies,
    expected_leader_tenure_hours,
    expected_view_changes_per_year,
    rank_leaders,
    rank_leaders_by_curves,
)
from repro.planner.optimizer import (
    equivalent_reliability_size,
    evaluate_plan,
    find_cheapest_plan,
)
from repro.planner.quorum_sizing import best_flexible_pair, size_quorums
from repro.planner.reconfig import PreemptiveReconfigPolicy
from repro.protocols.raft import RaftSpec


class TestCost:
    def test_plan_costs(self):
        plan = DeploymentPlan(SPOT_SKU, 9)
        assert plan.hourly_cost == pytest.approx(0.9)
        assert plan.power_watts == pytest.approx(9 * 150.0)

    def test_cost_ratio_paper_example(self):
        """§1: 3 reliable nodes vs 9 spot nodes -> 3.33x cheaper."""
        baseline = DeploymentPlan(RELIABLE_SKU, 3)
        candidate = DeploymentPlan(SPOT_SKU, 9)
        assert cost_ratio(baseline, candidate) == pytest.approx(10.0 / 3.0)

    def test_sku_discounting(self):
        cheap = RELIABLE_SKU.discounted(0.1)
        assert cheap.price_per_hour == pytest.approx(0.1)
        assert cheap.p_fail == RELIABLE_SKU.p_fail

    def test_fleet_projection(self):
        fleet = DeploymentPlan(SPOT_SKU, 3).fleet()
        assert fleet.n == 3
        assert fleet[0].p_fail == pytest.approx(0.08)

    def test_validation(self):
        with pytest.raises(Exception):
            NodeSKU("bad", p_fail=1.5, price_per_hour=1.0)
        with pytest.raises(InvalidConfigurationError):
            DeploymentPlan(SPOT_SKU, 0)


class TestOptimizer:
    def test_evaluate_plan_matches_counting(self):
        evaluation = evaluate_plan(DeploymentPlan(SPOT_SKU, 9))
        from repro.analysis.counting import counting_reliability

        expected = counting_reliability(RaftSpec(9), uniform_fleet(9, 0.08))
        assert evaluation.reliability == pytest.approx(expected.safe_and_live.value)

    def test_finds_spot_plan_for_three_nines(self):
        """The paper's punchline: spot nodes win at ~3.5 nines."""
        outcome = find_cheapest_plan(DEFAULT_PRICE_BOOK, 3.4)
        assert outcome.best is not None
        assert outcome.best.plan.sku.name == "spot"
        assert outcome.best.plan.count == 9

    def test_infeasible_target(self):
        low_grade = [NodeSKU("junk", 0.4, 0.01)]
        outcome = find_cheapest_plan(low_grade, 9.0, sizes=range(3, 8, 2))
        assert outcome.best is None
        assert outcome.candidates  # frontier still reported

    def test_equivalent_reliability_size_paper_match(self):
        """E2: 9 spot nodes match 3 reliable nodes."""
        match = equivalent_reliability_size(DeploymentPlan(RELIABLE_SKU, 3), SPOT_SKU)
        assert match is not None
        assert match.plan.count == 9

    def test_equivalent_size_none_when_impossible(self):
        junk = NodeSKU("junk", 0.45, 0.01)
        match = equivalent_reliability_size(
            DeploymentPlan(RELIABLE_SKU, 3), junk, max_size=7
        )
        assert match is None

    def test_objective_validation(self):
        with pytest.raises(InvalidConfigurationError):
            find_cheapest_plan(DEFAULT_PRICE_BOOK, 3.0, objective="karma")


class TestQuorumSizing:
    def test_paper_n100_trigger_quorum(self):
        """§3: at N=100, p=1%, 5 sampled nodes give ten nines (vs f+1=34)."""
        sizing = size_quorums(100, 0.01, 10.0)
        assert sizing.view_change_trigger == 5

    def test_sampled_quorum_smaller_than_majority(self):
        sizing = size_quorums(100, 0.01, 6.0)
        assert sizing.sampled_quorum < 51
        assert sizing.sampled_quorum_correct_overlap >= sizing.sampled_quorum

    def test_best_flexible_pair_structurally_safe(self):
        fleet = uniform_fleet(5, 0.05)
        choice = best_flexible_pair(fleet)
        assert 5 < choice.q_per + choice.q_vc
        assert 5 < 2 * choice.q_vc

    def test_best_pair_is_majority_for_uniform_fleet(self):
        # With homogeneous nodes, majority/majority maximises S&L.
        fleet = uniform_fleet(5, 0.05)
        choice = best_flexible_pair(fleet)
        assert (choice.q_per, choice.q_vc) == (3, 3)

    def test_target_picks_smaller_quorums(self):
        fleet = uniform_fleet(7, 0.01)
        unconstrained = best_flexible_pair(fleet)
        relaxed = best_flexible_pair(fleet, target_nines=2.0)
        assert relaxed.q_per + relaxed.q_vc <= unconstrained.q_per + unconstrained.q_vc

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            size_quorums(0, 0.01, 3.0)
        with pytest.raises(InvalidConfigurationError):
            size_quorums(10, 0.0, 3.0)


class TestLeader:
    def test_rank_leaders_prefers_reliable(self):
        fleet = Fleet((NodeModel(0.08), NodeModel(0.01), NodeModel(0.04)))
        ranking = rank_leaders(fleet)
        assert ranking.best == 1
        assert list(ranking.order) == [1, 2, 0]

    def test_rank_by_curves_horizon_sensitivity(self):
        """Aging matters: rankings flip with the horizon (paper §2)."""
        young_but_flaky = ConstantHazard(2e-4)
        aging = WeibullCurve(shape=6.0, scale_hours=4000.0)
        short = rank_leaders_by_curves([young_but_flaky, aging], horizon_hours=100.0)
        long = rank_leaders_by_curves([young_but_flaky, aging], horizon_hours=6000.0)
        assert short.best == 1  # wear-out curve is safer early in life
        assert long.best == 0  # but loses over a long lease

    def test_expected_tenure_exponential(self):
        curve = ConstantHazard(1e-3)
        tenure = expected_leader_tenure_hours(curve, horizon_hours=50_000.0)
        assert tenure == pytest.approx(1000.0, rel=0.01)

    def test_view_change_rate(self):
        curve = ConstantHazard(1e-3)
        rate = expected_view_changes_per_year(curve)
        assert rate == pytest.approx(8.766, rel=0.05)

    def test_policy_comparison(self):
        fleet = Fleet((NodeModel(0.08), NodeModel(0.01), NodeModel(0.04)))
        comparison = compare_leader_policies(fleet)
        assert comparison.aware_failure_probability == pytest.approx(0.01)
        assert comparison.improvement_factor > 4.0


class TestReconfig:
    def test_no_action_when_target_met(self):
        curves = [ConstantHazard.from_window_probability(0.01, 720.0)] * 5
        policy = PreemptiveReconfigPolicy(RaftSpec, 3.0, NodeModel(0.005))
        decision = policy.evaluate(curves, 0.0, 720.0)
        assert not decision.acted
        assert decision.reliability_after == decision.reliability_before

    def test_replaces_worst_node_first(self):
        curves = [
            ConstantHazard.from_window_probability(p, 720.0)
            for p in (0.01, 0.01, 0.30, 0.01, 0.01)
        ]
        policy = PreemptiveReconfigPolicy(RaftSpec, 4.0, NodeModel(0.005))
        decision = policy.evaluate(curves, 0.0, 720.0)
        assert decision.acted
        assert decision.replacements[0].node_index == 2
        assert decision.reliability_after > decision.reliability_before

    def test_budget_respected(self):
        curves = [ConstantHazard.from_window_probability(0.3, 720.0)] * 5
        policy = PreemptiveReconfigPolicy(
            RaftSpec, 9.0, NodeModel(0.001), max_replacements_per_window=2
        )
        decision = policy.evaluate(curves, 0.0, 720.0)
        assert len(decision.replacements) == 2

    def test_schedule_handles_aging(self):
        """Wear-out curves eventually trigger replacement."""
        curves = [WeibullCurve(shape=5.0, scale_hours=6_000.0) for _ in range(3)]
        policy = PreemptiveReconfigPolicy(RaftSpec, 3.0, NodeModel(0.002))
        decisions = policy.simulate_schedule(curves, total_hours=10_000.0, window_hours=1_000.0)
        assert any(d.acted for d in decisions)
        assert decisions[-1].reliability_after >= 0.999


class TestDetector:
    def _feed(self, detector, period=1.0, count=50, start=0.0):
        t = start
        for _ in range(count):
            detector.heartbeat(t)
            t += period
        return t - period

    def test_phi_grows_with_silence(self):
        detector = PhiAccrualDetector()
        last = self._feed(detector)
        assert detector.phi(last + 1.0) < detector.phi(last + 5.0)

    def test_not_suspected_on_schedule(self):
        detector = PhiAccrualDetector(threshold=8.0)
        last = self._feed(detector)
        assert not detector.level(last + 1.0).suspected

    def test_suspected_after_long_silence(self):
        detector = PhiAccrualDetector(threshold=8.0)
        last = self._feed(detector)
        assert detector.level(last + 60.0).suspected

    def test_false_positive_probability(self):
        detector = PhiAccrualDetector()
        last = self._feed(detector)
        level = detector.level(last + 3.0)
        assert level.false_positive_probability == pytest.approx(10.0 ** (-level.phi))

    def test_time_to_suspicion_consistent(self):
        detector = PhiAccrualDetector(threshold=6.0)
        last = self._feed(detector)
        t_suspect = detector.time_to_suspicion()
        assert detector.phi(last + t_suspect) == pytest.approx(6.0, abs=0.2)

    def test_cold_start_not_suspicious(self):
        detector = PhiAccrualDetector()
        assert detector.phi(100.0) == 0.0

    def test_jittery_heartbeats_need_longer_silence(self):
        steady = PhiAccrualDetector()
        jittery = PhiAccrualDetector()
        self._feed(steady, period=1.0)
        import numpy as np

        rng = np.random.default_rng(0)
        t = 0.0
        for _ in range(50):
            jittery.heartbeat(t)
            t += float(rng.uniform(0.2, 1.8))
        assert jittery.time_to_suspicion() > steady.time_to_suspicion()

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            PhiAccrualDetector(window_size=1)
        detector = PhiAccrualDetector()
        detector.heartbeat(1.0)
        with pytest.raises(InvalidConfigurationError):
            detector.heartbeat(0.5)
