"""Unit tests for multi-window horizon analysis."""

from __future__ import annotations

import pytest

from repro.analysis.counting import counting_reliability
from repro.analysis.horizon import (
    annualized_downtime_minutes,
    expected_bad_windows,
    first_subtarget_window,
    fleet_for_window,
    horizon_survival,
    reliability_over_horizon,
)
from repro.errors import InvalidConfigurationError
from repro.faults.curves import ConstantHazard, WeibullCurve
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec

WINDOW = 720.0  # 30 days


def _constant_curves(n, p):
    return [ConstantHazard.from_window_probability(p, WINDOW)] * n


def _aging_curves(n):
    return [WeibullCurve(shape=4.0, scale_hours=20_000.0)] * n


class TestWindowProjection:
    def test_constant_curves_flat_series(self):
        points = reliability_over_horizon(
            RaftSpec, _constant_curves(5, 0.01), window_hours=WINDOW, n_windows=6
        )
        values = [p.safe_and_live for p in points]
        assert all(v == pytest.approx(values[0]) for v in values)

    def test_first_window_matches_direct_analysis(self):
        points = reliability_over_horizon(
            RaftSpec, _constant_curves(5, 0.01), window_hours=WINDOW, n_windows=1
        )
        direct = counting_reliability(RaftSpec(5), uniform_fleet(5, 0.01))
        assert points[0].safe_and_live == pytest.approx(direct.safe_and_live.value)

    def test_aging_curves_decline(self):
        points = reliability_over_horizon(
            RaftSpec, _aging_curves(5), window_hours=WINDOW, n_windows=24
        )
        assert points[-1].safe_and_live < points[0].safe_and_live

    def test_fleet_for_window_projects_hazard(self):
        fleet = fleet_for_window(_constant_curves(3, 0.02), 0.0, WINDOW)
        assert fleet[0].p_fail == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            reliability_over_horizon(
                RaftSpec, _constant_curves(3, 0.01), window_hours=WINDOW, n_windows=0
            )
        with pytest.raises(InvalidConfigurationError):
            fleet_for_window(_constant_curves(3, 0.01), 0.0, 0.0)


class TestHorizonSurvival:
    def test_repair_model_is_product(self):
        curves = _constant_curves(5, 0.01)
        one = horizon_survival(RaftSpec, curves, window_hours=WINDOW, n_windows=1)
        twelve = horizon_survival(RaftSpec, curves, window_hours=WINDOW, n_windows=12)
        assert twelve == pytest.approx(one**12)

    def test_no_repair_equals_single_long_window(self):
        curves = _constant_curves(5, 0.01)
        no_repair = horizon_survival(
            RaftSpec, curves, window_hours=WINDOW, n_windows=12, repair_between_windows=False
        )
        long_window = counting_reliability(
            RaftSpec(5), fleet_for_window(curves, 0.0, 12 * WINDOW)
        )
        assert no_repair == pytest.approx(long_window.safe_and_live.value)

    def test_repair_strictly_helps(self):
        curves = _constant_curves(5, 0.05)
        with_repair = horizon_survival(RaftSpec, curves, window_hours=WINDOW, n_windows=12)
        without = horizon_survival(
            RaftSpec, curves, window_hours=WINDOW, n_windows=12, repair_between_windows=False
        )
        assert with_repair > without


class TestDeadlines:
    def test_aging_fleet_has_deadline(self):
        point = first_subtarget_window(
            RaftSpec, _aging_curves(5), window_hours=WINDOW, target_nines=4.0
        )
        assert point is not None
        assert point.window_index > 0  # healthy at first

    def test_reliable_fleet_never_dips(self):
        point = first_subtarget_window(
            RaftSpec,
            _constant_curves(5, 0.001),
            window_hours=WINDOW,
            target_nines=3.0,
            max_windows=24,
        )
        assert point is None

    def test_expected_bad_windows_scales_linearly_for_constant_curves(self):
        curves = _constant_curves(5, 0.02)
        one_year = expected_bad_windows(RaftSpec, curves, window_hours=WINDOW, n_windows=12)
        two_years = expected_bad_windows(RaftSpec, curves, window_hours=WINDOW, n_windows=24)
        assert two_years == pytest.approx(2 * one_year)


class TestDowntimeTranslation:
    def test_magnitude(self):
        # 3-nines windows: ~0.1% of the year exposed.
        minutes = annualized_downtime_minutes(1e-3, window_hours=WINDOW)
        assert minutes == pytest.approx(8766.0 * 60.0 * 1e-3)

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            annualized_downtime_minutes(1.5, window_hours=WINDOW)
        with pytest.raises(InvalidConfigurationError):
            annualized_downtime_minutes(0.1, window_hours=0.0)
