"""Simulated-Raft behaviour tests."""

from __future__ import annotations

import pytest

from repro.sim import Cluster, audit_run, run_scenario
from repro.sim.checker import check_agreement, check_completion
from repro.sim.raft import LogEntry, RaftLog, Role, raft_node_factory


def _leader_ids(cluster):
    return [e.node_id for e in cluster.trace.events_of_kind("leader")]


class TestRaftLog:
    def test_append_and_terms(self):
        log = RaftLog()
        assert log.last_index == 0
        assert log.last_term == 0
        log.append(LogEntry(1, "a"))
        log.append(LogEntry(2, "b"))
        assert log.last_index == 2
        assert log.term_at(1) == 1
        assert log.last_term == 2

    def test_matches_consistency_check(self):
        log = RaftLog()
        log.append(LogEntry(1, "a"))
        assert log.matches(0, 0)
        assert log.matches(1, 1)
        assert not log.matches(1, 2)
        assert not log.matches(5, 1)

    def test_overwrite_truncates_conflicts(self):
        log = RaftLog()
        log.append(LogEntry(1, "a"))
        log.append(LogEntry(1, "b"))
        log.overwrite_from(1, (LogEntry(2, "c"),))
        assert log.last_index == 2
        assert log.entry_at(2).value == "c"

    def test_overwrite_keeps_matching_prefix(self):
        log = RaftLog()
        log.append(LogEntry(1, "a"))
        log.overwrite_from(0, (LogEntry(1, "a"), LogEntry(1, "b")))
        assert log.last_index == 2

    def test_up_to_date_rule(self):
        log = RaftLog()
        log.append(LogEntry(2, "a"))
        assert log.is_up_to_date(5, 3)  # higher term wins
        assert log.is_up_to_date(1, 2)  # same term, same/greater index
        assert not log.is_up_to_date(1, 1)  # lower term loses


class TestElections:
    def test_single_leader_elected(self):
        cluster = Cluster(5, raft_node_factory(), seed=0)
        cluster.start()
        cluster.run_until(2.0)
        leaders = [n for n in cluster.nodes if n.role is Role.LEADER]
        assert len(leaders) == 1

    def test_no_two_leaders_in_same_term(self):
        cluster = Cluster(5, raft_node_factory(), seed=1)
        cluster.crash_at(0, 1.0)
        cluster.recover_at(0, 3.0)
        cluster.start()
        cluster.run_until(10.0)
        terms: dict[int, set[int]] = {}
        for event in cluster.trace.events_of_kind("leader"):
            term = int(event.detail.split("=")[1])
            terms.setdefault(term, set()).add(event.node_id)
        assert all(len(nodes) == 1 for nodes in terms.values())

    def test_new_leader_after_leader_crash(self):
        cluster = Cluster(3, raft_node_factory(), seed=2)
        cluster.start()
        cluster.run_until(1.0)
        first_leader = _leader_ids(cluster)[-1]
        cluster.crash_at(first_leader, 1.5)
        cluster.run_until(5.0)
        later_leaders = set(_leader_ids(cluster)) - {first_leader}
        assert later_leaders

    def test_no_leader_without_quorum(self):
        cluster = Cluster(3, raft_node_factory(), seed=3)
        cluster.crash_at(0, 0.01)
        cluster.crash_at(1, 0.01)
        cluster.start()
        cluster.run_until(5.0)
        assert all(n.role is not Role.LEADER or n.is_crashed for n in cluster.nodes)


class TestReplication:
    def test_all_nodes_commit_all_commands(self):
        cluster = Cluster(5, raft_node_factory(), seed=4)
        commands = [f"cmd-{i}" for i in range(20)]
        trace = run_scenario(cluster, commands=commands, duration=10.0)
        verdict = audit_run(trace, commands, correct_nodes=range(5))
        assert verdict.safe and verdict.live

    def test_commit_survives_minority_crashes(self):
        cluster = Cluster(5, raft_node_factory(), seed=5)
        cluster.crash_at(3, 0.8)
        cluster.crash_at(4, 0.9)
        commands = [f"c{i}" for i in range(10)]
        trace = run_scenario(cluster, commands=commands, duration=12.0)
        verdict = audit_run(trace, commands, correct_nodes=sorted(cluster.correct_node_ids()))
        assert verdict.safe and verdict.live

    def test_no_progress_without_majority(self):
        cluster = Cluster(5, raft_node_factory(), seed=6)
        for node in (2, 3, 4):
            cluster.crash_at(node, 0.1)
        commands = ["never"]
        trace = run_scenario(cluster, commands=commands, duration=8.0)
        liveness = check_completion(trace, commands, correct_nodes=[0, 1])
        assert not liveness.holds
        safety = check_agreement(trace)
        assert safety.holds  # stalled, but never inconsistent

    def test_partition_heals_and_catches_up(self):
        cluster = Cluster(5, raft_node_factory(), seed=7)
        cluster.start()
        cluster.run_until(1.0)
        cluster.network.set_partition([[0, 1, 2], [3, 4]])
        commands = [f"p{i}" for i in range(5)]
        at = 1.2
        for command in commands:
            cluster.submit(command, at=at)
            at += 0.1
        cluster.run_until(4.0)
        cluster.network.heal_partition()
        cluster.run_until(12.0)
        verdict = audit_run(cluster.trace, commands, correct_nodes=range(5))
        assert verdict.safe and verdict.live

    def test_leader_crash_no_lost_committed_data(self):
        cluster = Cluster(5, raft_node_factory(), seed=8)
        cluster.start()
        cluster.run_until(1.0)
        leader = _leader_ids(cluster)[-1]
        commands = [f"x{i}" for i in range(8)]
        at = 1.1
        for command in commands:
            cluster.submit(command, at=at)
            at += 0.05
        cluster.crash_at(leader, 1.3)
        cluster.run_until(12.0)
        correct = sorted(cluster.correct_node_ids())
        verdict = audit_run(cluster.trace, commands, correct_nodes=correct)
        assert verdict.safe
        assert verdict.live

    def test_recovered_node_catches_up(self):
        cluster = Cluster(3, raft_node_factory(), seed=9)
        cluster.crash_at(2, 0.5)
        cluster.recover_at(2, 4.0)
        commands = [f"r{i}" for i in range(6)]
        trace = run_scenario(cluster, commands=commands, duration=15.0)
        committed = trace.committed_by_node()
        assert set(committed.get(2, {}).values()) >= set(commands)


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        def run(seed):
            cluster = Cluster(5, raft_node_factory(), seed=seed)
            cluster.crash_at(1, 1.0)
            commands = [f"d{i}" for i in range(5)]
            trace = run_scenario(cluster, commands=commands, duration=6.0)
            return [(c.time, c.node_id, c.slot, c.value) for c in trace.commits]

        assert run(123) == run(123)

    def test_different_seeds_differ(self):
        def run(seed):
            cluster = Cluster(5, raft_node_factory(), seed=seed)
            trace = run_scenario(cluster, commands=["a"], duration=4.0)
            return [e.node_id for e in trace.events_of_kind("leader")]

        outcomes = {tuple(run(seed)) for seed in range(8)}
        assert len(outcomes) > 1  # election randomization visible


class TestFlexibleQuorums:
    def test_large_persistence_quorum_blocks_commit_with_two_down(self):
        # q_per = 4 of 5: two crashes stall commits even though elections
        # (q_vc = 3) still succeed.
        cluster = Cluster(5, raft_node_factory(q_per=4, q_vc=3), seed=10)
        cluster.crash_at(3, 0.2)
        cluster.crash_at(4, 0.2)
        commands = ["stuck"]
        trace = run_scenario(cluster, commands=commands, duration=8.0)
        liveness = check_completion(trace, commands, correct_nodes=[0, 1, 2])
        assert not liveness.holds

    def test_small_persistence_quorum_commits_with_two_down(self):
        cluster = Cluster(5, raft_node_factory(q_per=2, q_vc=4), seed=11)
        cluster.crash_at(4, 0.2)
        commands = ["flexible"]
        trace = run_scenario(cluster, commands=commands, duration=8.0)
        liveness = check_completion(trace, commands, correct_nodes=[0, 1, 2, 3])
        assert liveness.holds
