"""Unit tests for estimates, nines and formatting."""

from __future__ import annotations

import math

import pytest

from repro.analysis.result import (
    Estimate,
    ReliabilityResult,
    format_probability,
    from_nines,
    nines,
)


class TestNines:
    @pytest.mark.parametrize(
        "p,expected", [(0.9, 1.0), (0.99, 2.0), (0.999, 3.0), (0.99999999999, 11.0)]
    )
    def test_known_values(self, p, expected):
        assert nines(p) == pytest.approx(expected, abs=1e-6)

    def test_perfect_reliability(self):
        assert nines(1.0) == math.inf

    def test_round_trip(self):
        for n in (0.5, 1.0, 3.5, 9.0):
            assert nines(from_nines(n)) == pytest.approx(n)

    def test_from_inf(self):
        assert from_nines(math.inf) == 1.0


class TestFormatting:
    def test_paper_style_precision(self):
        # Mirrors Table 1's "99.9990%" vs "99.90%" distinction.
        assert format_probability(0.99999) == "99.99900%"[:9] or format_probability(0.99999).startswith("99.999")
        assert format_probability(0.999) .startswith("99.9")

    def test_boundaries(self):
        assert format_probability(1.0) == "100%"
        assert format_probability(0.0) == "0%"

    def test_distinguishes_nearby_nines(self):
        assert format_probability(0.9990) != format_probability(0.99990)


class TestEstimate:
    def test_exact(self):
        est = Estimate.exact(0.999)
        assert est.is_exact
        assert est.nines == pytest.approx(3.0)
        assert est.contains(0.999)
        assert not est.contains(0.998)

    def test_interval_contains(self):
        est = Estimate(value=0.5, stderr=0.01, ci_low=0.48, ci_high=0.52)
        assert est.contains(0.49)
        assert not est.contains(0.55)

    def test_str_forms(self):
        assert "±" not in str(Estimate.exact(0.99))
        assert "±" in str(Estimate(0.99, stderr=0.001, ci_low=0.98, ci_high=0.995))


class TestReliabilityResult:
    def test_row_layout(self):
        result = ReliabilityResult(
            protocol="Raft",
            n=3,
            safe=Estimate.exact(1.0),
            live=Estimate.exact(0.999702),
            safe_and_live=Estimate.exact(0.999702),
            method="counting",
        )
        row = result.row()
        assert row["N"] == "3"
        assert row["Safe %"] == "100%"
        assert "99.970" in row["Safe and Live %"]

    def test_str(self):
        result = ReliabilityResult(
            protocol="PBFT",
            n=4,
            safe=Estimate.exact(0.9994),
            live=Estimate.exact(0.9994),
            safe_and_live=Estimate.exact(0.9994),
            method="counting",
        )
        assert "PBFT(n=4)" in str(result)
