"""Unit tests for importance sampling."""

from __future__ import annotations

import pytest

from repro.analysis.counting import counting_reliability
from repro.analysis.importance import (
    default_tilt,
    importance_sample_violation,
    minimal_violating_failures,
    quorum_wipeout_probability,
)
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import uniform_fleet
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec


class TestMinimalViolations:
    def test_raft_liveness_threshold(self):
        # 5-node Raft: liveness needs 3 correct, so 3 failures violate.
        assert minimal_violating_failures(RaftSpec(5), predicate="live") == 3

    def test_raft_safety_unviolable_by_crashes(self):
        from repro.analysis.config import FaultKind

        assert (
            minimal_violating_failures(
                RaftSpec(5), predicate="safe", failure_kind=FaultKind.CRASH
            )
            is None
        )

    def test_raft_safety_violable_by_byzantine(self):
        assert minimal_violating_failures(RaftSpec(5), predicate="safe") == 1

    def test_pbft_safety_threshold(self):
        # N=4 PBFT: safe while Byz <= 1, so 2 failures can violate.
        assert minimal_violating_failures(PBFTSpec(4), predicate="safe") == 2

    def test_asymmetric_rejected(self):
        from repro.protocols.reliability_aware import ReliabilityAwareRaftSpec

        with pytest.raises(InvalidConfigurationError):
            minimal_violating_failures(ReliabilityAwareRaftSpec(3, pinned=[0]))


class TestTilt:
    def test_floor_applied(self):
        fleet = uniform_fleet(10, 0.001)
        tilt = default_tilt(fleet, 5)
        assert all(t == pytest.approx(0.5) for t in tilt)

    def test_likely_failures_untouched(self):
        fleet = uniform_fleet(4, 0.8)
        tilt = default_tilt(fleet, 1)
        assert all(t == pytest.approx(0.8) for t in tilt)


class TestImportanceEstimates:
    def test_matches_exact_liveness_violation(self):
        fleet = uniform_fleet(5, 0.01)
        spec = RaftSpec(5)
        exact_violation = 1.0 - counting_reliability(spec, fleet).live.value
        result = importance_sample_violation(
            spec, fleet, predicate="live", trials=40_000, seed=0
        )
        assert result.violation.value == pytest.approx(exact_violation, rel=0.1)

    def test_resolves_deep_nines_plain_mc_cannot(self):
        # 9-node Raft at p=1%: violation ≈ 1.2e-8; 20k plain-MC trials would
        # almost surely see zero events.
        fleet = uniform_fleet(9, 0.01)
        spec = RaftSpec(9)
        exact_violation = 1.0 - counting_reliability(spec, fleet).live.value
        result = importance_sample_violation(
            spec, fleet, predicate="live", trials=40_000, seed=1
        )
        assert result.violation.value == pytest.approx(exact_violation, rel=0.2)
        assert result.effective_sample_size > 100

    def test_structurally_safe_returns_exact_zero(self):
        fleet = uniform_fleet(5, 0.01)
        result = importance_sample_violation(RaftSpec(5), fleet, predicate="safe")
        assert result.violation.value == 0.0
        assert result.violation.is_exact

    def test_explicit_tilt_validation(self):
        fleet = uniform_fleet(3, 0.01)
        with pytest.raises(InvalidConfigurationError):
            importance_sample_violation(
                RaftSpec(3), fleet, predicate="live", tilt=[0.5, 0.5]
            )
        with pytest.raises(InvalidConfigurationError):
            importance_sample_violation(
                RaftSpec(3), fleet, predicate="live", tilt=[0.0, 0.5, 1.0]
            )

    def test_reliability_complement(self):
        fleet = uniform_fleet(5, 0.02)
        result = importance_sample_violation(
            RaftSpec(5), fleet, predicate="live", trials=20_000, seed=2
        )
        assert result.reliability.value == pytest.approx(1.0 - result.violation.value)


class TestQuorumWipeout:
    def test_matches_closed_form(self):
        # The paper's §4 example: q=10, p=10% -> 1e-10.
        result = quorum_wipeout_probability(100, 10, 0.10, trials=400_000, seed=3)
        assert result.violation.value == pytest.approx(1e-10, rel=0.15)

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            quorum_wipeout_probability(10, 0, 0.1)
        with pytest.raises(InvalidConfigurationError):
            quorum_wipeout_probability(10, 3, 0.0)
