"""Simulated-PBFT behaviour tests, honest and Byzantine."""

from __future__ import annotations

import pytest

from repro.sim import Cluster, audit_run, run_scenario
from repro.sim.checker import check_agreement, check_completion
from repro.sim.pbft import (
    DoubleVoter,
    EquivocatingDoubleVoter,
    EquivocatingPrimary,
    SilentByzantine,
    mixed_pbft_factory,
    pbft_node_factory,
)


class TestHonestOperation:
    def test_commits_under_no_failures(self):
        cluster = Cluster(4, pbft_node_factory(), seed=0)
        commands = [f"op{i}" for i in range(8)]
        trace = run_scenario(cluster, commands=commands, duration=10.0)
        verdict = audit_run(trace, commands, correct_nodes=range(4))
        assert verdict.safe and verdict.live

    def test_larger_cluster(self):
        cluster = Cluster(7, pbft_node_factory(), seed=1)
        commands = [f"op{i}" for i in range(5)]
        trace = run_scenario(cluster, commands=commands, duration=10.0)
        verdict = audit_run(trace, commands, correct_nodes=range(7))
        assert verdict.safe and verdict.live

    def test_view_change_on_primary_crash(self):
        cluster = Cluster(4, pbft_node_factory(), seed=2)
        cluster.crash_at(0, 0.3)
        commands = [f"vc{i}" for i in range(4)]
        trace = run_scenario(cluster, commands=commands, duration=15.0)
        assert trace.events_of_kind("new-view")
        verdict = audit_run(trace, commands, correct_nodes=[1, 2, 3])
        assert verdict.safe and verdict.live

    def test_no_progress_beyond_crash_budget(self):
        # n=4 tolerates one fault; two crashes must stall liveness.
        cluster = Cluster(4, pbft_node_factory(), seed=3)
        cluster.crash_at(1, 0.1)
        cluster.crash_at(2, 0.1)
        commands = ["never"]
        trace = run_scenario(cluster, commands=commands, duration=10.0)
        liveness = check_completion(trace, commands, correct_nodes=[0, 3])
        assert not liveness.holds
        assert check_agreement(trace).holds

    def test_deterministic_under_seed(self):
        def run(seed):
            cluster = Cluster(4, pbft_node_factory(), seed=seed)
            trace = run_scenario(cluster, commands=["a", "b"], duration=8.0)
            return [(c.node_id, c.slot, c.value) for c in trace.commits]

        assert run(42) == run(42)


class TestByzantineBehaviour:
    def test_single_equivocator_cannot_break_safety(self):
        """Thm 3.1: |Byz| = 1 < 2*3 - 4 = 2 — safe."""
        factory = mixed_pbft_factory(frozenset({0}), EquivocatingPrimary)
        cluster = Cluster(4, factory, seed=4)
        commands = ["x1", "x2"]
        trace = run_scenario(cluster, commands=commands, duration=15.0)
        verdict = audit_run(trace, commands, correct_nodes=[1, 2, 3])
        assert verdict.safe

    def test_two_byzantine_break_four_node_safety(self):
        """Thm 3.1: |Byz| = 2 ≥ 2|Q_eq| − N — agreement can split."""
        factory = mixed_pbft_factory(
            frozenset({0, 2}), DoubleVoter, primary_class=EquivocatingDoubleVoter
        )
        cluster = Cluster(4, factory, seed=5)
        trace = run_scenario(cluster, commands=["y1"], duration=15.0)
        verdict = check_agreement(trace, correct_nodes=[1, 3])
        assert not verdict.holds
        values = {v.value_a for v in verdict.violations} | {
            v.value_b for v in verdict.violations
        }
        assert "y1" in values and "evil(y1)" in values

    def test_seven_nodes_tolerate_two_byzantine(self):
        """n=7, q_eq=5: safety holds up to |Byz| = 2 < 2*5-7 = 3."""
        factory = mixed_pbft_factory(
            frozenset({0, 3}), DoubleVoter, primary_class=EquivocatingDoubleVoter
        )
        cluster = Cluster(7, factory, seed=6)
        commands = ["z1", "z2"]
        trace = run_scenario(cluster, commands=commands, duration=15.0)
        verdict = check_agreement(trace, correct_nodes=[1, 2, 4, 5, 6])
        assert verdict.holds

    def test_silent_primary_triggers_view_change(self):
        factory = mixed_pbft_factory(frozenset({0}), SilentByzantine)
        cluster = Cluster(4, factory, seed=7)
        commands = ["s1", "s2"]
        trace = run_scenario(cluster, commands=commands, duration=20.0)
        verdict = audit_run(trace, commands, correct_nodes=[1, 2, 3])
        assert verdict.safe and verdict.live
        assert trace.events_of_kind("new-view")

    def test_silent_backup_harmless(self):
        factory = mixed_pbft_factory(frozenset({2}), SilentByzantine)
        cluster = Cluster(4, factory, seed=8)
        commands = ["ok1", "ok2"]
        trace = run_scenario(cluster, commands=commands, duration=10.0)
        verdict = audit_run(trace, commands, correct_nodes=[0, 1, 3])
        assert verdict.safe and verdict.live
