"""Unit tests for operational hazard timelines."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError
from repro.faults.curves import ConstantHazard
from repro.faults.timeline import (
    HazardTimeline,
    RiskWindow,
    peak_hours_calendar,
    rollout_calendar,
)

BASE = ConstantHazard(1e-5)


class TestRiskWindow:
    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            RiskWindow(10.0, 5.0, 2.0)
        with pytest.raises(InvalidConfigurationError):
            RiskWindow(-1.0, 5.0, 2.0)
        with pytest.raises(InvalidConfigurationError):
            RiskWindow(0.0, 5.0, -2.0)


class TestTimeline:
    def test_hazard_amplified_inside_window(self):
        timeline = HazardTimeline(BASE, (RiskWindow(10.0, 12.0, 50.0, "rollout"),))
        assert timeline.hazard(11.0) == pytest.approx(50.0 * 1e-5)
        assert timeline.hazard(5.0) == pytest.approx(1e-5)
        assert timeline.hazard(13.0) == pytest.approx(1e-5)

    def test_cumulative_hazard_splits_exactly(self):
        timeline = HazardTimeline(BASE, (RiskWindow(10.0, 12.0, 50.0),))
        expected = 1e-5 * (10.0 + 50.0 * 2.0 + 8.0)  # [0,10) + [10,12) + [12,20)
        assert timeline.cumulative_hazard(0.0, 20.0) == pytest.approx(expected)

    def test_partial_overlap_of_query_and_window(self):
        timeline = HazardTimeline(BASE, (RiskWindow(10.0, 12.0, 50.0),))
        expected = 1e-5 * (1.0 + 50.0 * 1.0)  # [9,10) base + [10,11) amplified
        assert timeline.cumulative_hazard(9.0, 11.0) == pytest.approx(expected)

    def test_freeze_window_reduces_hazard(self):
        timeline = HazardTimeline(BASE, (RiskWindow(0.0, 24.0, 0.5, "freeze"),))
        assert timeline.failure_probability(0.0, 24.0) < BASE.failure_probability(0.0, 24.0)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            HazardTimeline(BASE, (RiskWindow(0.0, 10.0, 2.0), RiskWindow(5.0, 15.0, 3.0)))

    def test_windows_sorted_internally(self):
        timeline = HazardTimeline(
            BASE, (RiskWindow(20.0, 21.0, 2.0), RiskWindow(5.0, 6.0, 3.0))
        )
        assert timeline.windows[0].start_hours == 5.0

    def test_active_window_lookup(self):
        window = RiskWindow(10.0, 12.0, 50.0, "rollout")
        timeline = HazardTimeline(BASE, (window,))
        assert timeline.active_window(11.0) == window
        assert timeline.active_window(13.0) is None

    def test_sampling_concentrates_in_risky_windows(self):
        import numpy as np

        timeline = HazardTimeline(
            ConstantHazard(1e-4), (RiskWindow(100.0, 110.0, 500.0, "rollout"),)
        )
        rng = np.random.default_rng(0)
        in_window = 0
        failures = 0
        for _ in range(2000):
            t = timeline.sample_failure_time(rng, horizon=200.0)
            if np.isfinite(t):
                failures += 1
                in_window += 100.0 <= t <= 110.0
        assert failures > 0
        assert in_window / failures > 0.5  # the 10h rollout dominates 200h


class TestCalendars:
    def test_rollout_calendar_cadence(self):
        windows = rollout_calendar(
            first_rollout_hours=24.0,
            cadence_hours=168.0,
            rollout_duration_hours=2.0,
            multiplier=50.0,
            horizon_hours=1000.0,
        )
        assert len(windows) == 6
        assert windows[1].start_hours == pytest.approx(24.0 + 168.0)
        assert all(w.multiplier == 50.0 for w in windows)

    def test_peak_hours_daily(self):
        windows = peak_hours_calendar(
            peak_start_hour_of_day=18.0, peak_length_hours=4.0, multiplier=3.0, days=3
        )
        assert len(windows) == 3
        assert windows[2].start_hours == pytest.approx(2 * 24.0 + 18.0)

    def test_calendar_composes_with_timeline_and_analysis(self):
        """Calendar -> timeline -> window fleet -> reliability delta."""
        from repro.analysis.counting import counting_reliability
        from repro.faults.mixture import Fleet, NodeModel
        from repro.protocols.raft import RaftSpec

        windows = rollout_calendar(
            first_rollout_hours=100.0,
            cadence_hours=720.0,
            rollout_duration_hours=4.0,
            multiplier=200.0,
            horizon_hours=720.0,
        )
        quiet = ConstantHazard(2e-5)
        risky = HazardTimeline(quiet, windows)
        p_quiet = quiet.failure_probability(0.0, 720.0)
        p_risky = risky.failure_probability(0.0, 720.0)
        assert p_risky > p_quiet

        r_quiet = counting_reliability(RaftSpec(5), Fleet((NodeModel(p_quiet),) * 5))
        r_risky = counting_reliability(RaftSpec(5), Fleet((NodeModel(p_risky),) * 5))
        assert r_risky.safe_and_live.value < r_quiet.safe_and_live.value

    def test_calendar_validation(self):
        with pytest.raises(InvalidConfigurationError):
            rollout_calendar(
                first_rollout_hours=0.0,
                cadence_hours=1.0,
                rollout_duration_hours=2.0,
                multiplier=1.0,
                horizon_hours=10.0,
            )
        with pytest.raises(InvalidConfigurationError):
            peak_hours_calendar(
                peak_start_hour_of_day=25.0, peak_length_hours=1.0, multiplier=1.0, days=1
            )
