"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired: list[str] = []
        scheduler.schedule_at(2.0, lambda: fired.append("late"))
        scheduler.schedule_at(1.0, lambda: fired.append("early"))
        scheduler.run_until(3.0)
        assert fired == ["early", "late"]

    def test_fifo_tiebreak_at_equal_times(self):
        scheduler = EventScheduler()
        fired: list[int] = []
        for i in range(5):
            scheduler.schedule_at(1.0, lambda i=i: fired.append(i))
        scheduler.run_until(1.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances_with_events(self):
        scheduler = EventScheduler()
        seen: list[float] = []
        scheduler.schedule_at(0.5, lambda: seen.append(scheduler.now))
        scheduler.run_until(1.0)
        assert seen == [0.5]
        assert scheduler.now == 1.0

    def test_schedule_after(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_after(0.25, lambda: fired.append(scheduler.now))
        scheduler.run_until(1.0)
        assert fired == [0.25]

    def test_nested_scheduling(self):
        scheduler = EventScheduler()
        fired: list[float] = []

        def outer():
            scheduler.schedule_after(0.5, lambda: fired.append(scheduler.now))

        scheduler.schedule_at(1.0, outer)
        scheduler.run_until(2.0)
        assert fired == [1.5]

    def test_cancellation(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        scheduler.run_until(2.0)
        assert fired == []
        assert handle.cancelled

    def test_events_beyond_horizon_not_fired(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(5.0, lambda: fired.append(1))
        scheduler.run_until(4.0)
        assert fired == []
        scheduler.run_until(6.0)
        assert fired == [1]

    def test_cannot_schedule_in_past(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(1.0, lambda: None)
        scheduler.run_until(2.0)
        with pytest.raises(SimulationError):
            scheduler.schedule_at(1.5, lambda: None)

    def test_cannot_run_backwards(self):
        scheduler = EventScheduler()
        scheduler.run_until(5.0)
        with pytest.raises(SimulationError):
            scheduler.run_until(4.0)

    def test_livelock_guard(self):
        scheduler = EventScheduler()

        def respawn():
            scheduler.schedule_after(0.0, respawn)

        scheduler.schedule_at(0.0, respawn)
        with pytest.raises(SimulationError):
            scheduler.run_until(1.0, max_events=1000)

    def test_counters(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        assert scheduler.pending_events == 2
        scheduler.run_until(1.5)
        assert scheduler.processed_events == 1
        assert scheduler.pending_events == 1

    def test_pending_counter_tracks_cancellation(self):
        scheduler = EventScheduler()
        keep = scheduler.schedule_at(1.0, lambda: None)
        drop = scheduler.schedule_at(2.0, lambda: None)
        assert scheduler.pending_events == 2
        drop.cancel()
        assert scheduler.pending_events == 1
        drop.cancel()  # idempotent: no double decrement
        assert scheduler.pending_events == 1
        scheduler.run_to_completion()
        assert scheduler.pending_events == 0
        assert scheduler.processed_events == 1
        assert not keep.cancelled

    def test_cancel_after_fire_does_not_corrupt_counter(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        scheduler.run_until(1.5)
        assert scheduler.pending_events == 1
        handle.cancel()  # event already executed; counter must not drift
        assert scheduler.pending_events == 1
        scheduler.run_to_completion()
        assert scheduler.pending_events == 0

    def test_pending_counter_with_cancelled_head(self):
        scheduler = EventScheduler()
        head = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        head.cancel()
        assert scheduler.pending_events == 1
        assert scheduler.step()  # skips the cancelled head, runs the live event
        assert scheduler.pending_events == 0
        assert scheduler.processed_events == 1
