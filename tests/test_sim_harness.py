"""Tests for the cluster harness, failure injection and trace checker."""

from __future__ import annotations

import math

import pytest

from repro.analysis.config import FailureConfig, FaultKind
from repro.errors import InvalidConfigurationError, SimulationError
from repro.faults.curves import ConstantHazard
from repro.sim import Cluster, plan_from_config, plan_from_curves
from repro.sim.checker import check_agreement, check_completion
from repro.sim.raft import raft_node_factory
from repro.sim.trace import TraceRecorder, merge_traces


class TestClusterHarness:
    def test_crash_and_recover_schedule(self):
        cluster = Cluster(3, raft_node_factory(), seed=0)
        cluster.crash_at(1, 0.5)
        cluster.recover_at(1, 1.5)
        cluster.start()
        cluster.run_until(1.0)
        assert cluster.crashed_node_ids() == {1}
        cluster.run_until(2.0)
        assert cluster.crashed_node_ids() == set()
        kinds = [e.kind for e in cluster.trace.events if e.node_id == 1]
        assert kinds == ["crash", "recover"]

    def test_unknown_node_rejected(self):
        cluster = Cluster(3, raft_node_factory(), seed=0)
        with pytest.raises(SimulationError):
            cluster.crash_at(9, 1.0)

    def test_submit_before_start_runs_at_time(self):
        cluster = Cluster(3, raft_node_factory(), seed=1)
        cluster.start()
        cluster.submit("now")  # immediate handoff
        cluster.run_until(5.0)
        committed = cluster.trace.committed_by_node()
        assert any("now" in slots.values() for slots in committed.values())

    def test_zero_size_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            Cluster(0, raft_node_factory())


class TestInjectionPlans:
    def test_plan_from_config_only_crash_nodes(self):
        config = FailureConfig(
            (FaultKind.CORRECT, FaultKind.CRASH, FaultKind.BYZANTINE)
        )
        plan = plan_from_config(config, duration=10.0, seed=0)
        assert plan.crashed_nodes == {1}

    def test_plan_times_inside_window(self):
        config = FailureConfig.from_failed_indices(5, [0, 2, 4])
        plan = plan_from_config(config, duration=10.0, crash_window=(1.0, 2.0), seed=1)
        assert all(1.0 <= t <= 2.0 for t in plan.crash_times.values())

    def test_plan_applies_to_cluster(self):
        config = FailureConfig.from_failed_indices(3, [2])
        plan = plan_from_config(config, duration=6.0, seed=2)
        cluster = Cluster(3, raft_node_factory(), seed=3)
        plan.apply(cluster)
        cluster.start()
        cluster.run_until(6.0)
        assert cluster.crashed_node_ids() == {2}

    def test_plan_from_curves_samples_failures(self):
        curves = [ConstantHazard(0.5)] * 4  # 0.5 failures/hour: near-certain
        plan = plan_from_curves(curves, duration=100.0, hours_per_sim_second=1.0, seed=4)
        assert len(plan.crashed_nodes) >= 3

    def test_plan_from_curves_with_repair(self):
        curves = [ConstantHazard(0.5)] * 3
        plan = plan_from_curves(
            curves,
            duration=100.0,
            hours_per_sim_second=1.0,
            mean_time_to_repair=1.0,
            seed=5,
        )
        assert set(plan.recovery_times) <= set(plan.crash_times)
        for node, recover in plan.recovery_times.items():
            assert recover > plan.crash_times[node]

    def test_invalid_recovery_rejected(self):
        from repro.sim.failures import InjectionPlan

        plan = InjectionPlan(crash_times={0: 2.0}, recovery_times={0: 1.0})
        cluster = Cluster(2, raft_node_factory(), seed=0)
        with pytest.raises(InvalidConfigurationError):
            plan.apply(cluster)

    def test_zero_hazard_no_crashes(self):
        curves = [ConstantHazard(0.0)] * 3
        plan = plan_from_curves(curves, duration=100.0, seed=6)
        assert not plan.crashed_nodes


class TestChecker:
    def _trace_with(self, commits):
        trace = TraceRecorder()
        for time, node, slot, value in commits:
            trace.record_commit(time, node, slot, value)
        return trace

    def test_agreement_holds(self):
        trace = self._trace_with([(1, 0, 1, "a"), (1, 1, 1, "a"), (2, 0, 2, "b")])
        assert check_agreement(trace).holds

    def test_agreement_violation_detected(self):
        trace = self._trace_with([(1, 0, 1, "a"), (1, 1, 1, "b")])
        verdict = check_agreement(trace)
        assert not verdict.holds
        violation = verdict.violations[0]
        assert violation.slot == 1
        assert {violation.value_a, violation.value_b} == {"a", "b"}

    def test_agreement_ignores_byzantine_nodes(self):
        trace = self._trace_with([(1, 0, 1, "a"), (1, 1, 1, "b")])
        assert check_agreement(trace, correct_nodes=[0]).holds

    def test_completion(self):
        trace = self._trace_with([(1, 0, 1, "a"), (1, 1, 1, "a")])
        assert check_completion(trace, ["a"], correct_nodes=[0, 1]).holds
        verdict = check_completion(trace, ["a", "b"], correct_nodes=[0, 1])
        assert not verdict.holds
        assert (0, "b") in verdict.missing

    def test_crash_intervals(self):
        trace = TraceRecorder()
        trace.record_event(1.0, 0, "crash")
        trace.record_event(3.0, 0, "recover")
        trace.record_event(5.0, 1, "crash")
        intervals = trace.crash_intervals(horizon=10.0)
        assert intervals[0] == [(1.0, 3.0)]
        assert intervals[1] == [(5.0, 10.0)]

    def test_merge_traces_sorted(self):
        a = self._trace_with([(2.0, 0, 1, "x")])
        b = self._trace_with([(1.0, 1, 1, "x")])
        merged = merge_traces([a, b])
        assert [c.time for c in merged.commits] == [1.0, 2.0]

    def test_committed_values_ordered_by_slot(self):
        trace = self._trace_with([(1, 0, 2, "b"), (2, 0, 1, "a")])
        assert trace.committed_values(0) == ["a", "b"]


class TestPredicateValidation:
    """The core validation loop: simulator verdicts match spec predicates."""

    @pytest.mark.parametrize("failed", [[], [0], [4], [0, 1]])
    def test_live_configs_complete(self, failed):
        config = FailureConfig.from_failed_indices(5, failed)
        from repro.protocols.raft import RaftSpec

        assert RaftSpec(5).is_live(config)  # sanity: these are live configs
        cluster = Cluster(5, raft_node_factory(), seed=42)
        plan = plan_from_config(config, duration=12.0, crash_window=(0.0, 0.5), seed=1)
        plan.apply(cluster)
        cluster.start()
        commands = [f"k{i}" for i in range(5)]
        at = 1.0
        for command in commands:
            cluster.submit(command, at=at)
            at += 0.1
        cluster.run_until(12.0)
        correct = sorted(set(range(5)) - set(failed))
        assert check_agreement(cluster.trace).holds
        assert check_completion(cluster.trace, commands, correct_nodes=correct).holds

    @pytest.mark.parametrize("failed", [[0, 1, 2], [1, 2, 3, 4]])
    def test_non_live_configs_stall(self, failed):
        config = FailureConfig.from_failed_indices(5, failed)
        from repro.protocols.raft import RaftSpec

        assert not RaftSpec(5).is_live(config)
        cluster = Cluster(5, raft_node_factory(), seed=43)
        plan = plan_from_config(config, duration=12.0, crash_window=(0.0, 0.5), seed=2)
        plan.apply(cluster)
        cluster.start()
        commands = ["stall"]
        cluster.submit(commands[0], at=1.0)
        cluster.run_until(12.0)
        correct = sorted(set(range(5)) - set(failed))
        assert check_agreement(cluster.trace).holds
        assert not check_completion(cluster.trace, commands, correct_nodes=correct).holds
