"""Unit tests for the CTMC toolkit and cluster Markov models."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidConfigurationError
from repro.markov.builders import ClusterMarkovModel, mttf_comparison
from repro.markov.chain import ContinuousTimeMarkovChain, TransitionRates


class TestChainBasics:
    def test_two_state_steady_state(self):
        # up -> down at rate λ, down -> up at rate μ: π_up = μ/(λ+μ).
        lam, mu = 0.2, 1.0
        chain = ContinuousTimeMarkovChain(
            ["up", "down"], TransitionRates({("up", "down"): lam, ("down", "up"): mu})
        )
        pi = chain.steady_state()
        assert pi["up"] == pytest.approx(mu / (lam + mu))
        assert pi["down"] == pytest.approx(lam / (lam + mu))

    def test_absorption_time_single_step(self):
        # One transient state with exit rate λ: E[T] = 1/λ.
        chain = ContinuousTimeMarkovChain(
            ["alive", "dead"], TransitionRates({("alive", "dead"): 0.25})
        )
        assert chain.expected_time_to_absorption("alive", ["dead"]) == pytest.approx(4.0)

    def test_absorption_time_two_steps(self):
        # a -> b -> c, rates 1 and 2: E[T] = 1 + 0.5.
        chain = ContinuousTimeMarkovChain(
            ["a", "b", "c"], TransitionRates({("a", "b"): 1.0, ("b", "c"): 2.0})
        )
        assert chain.expected_time_to_absorption("a", ["c"]) == pytest.approx(1.5)

    def test_absorption_probability_split(self):
        # a splits to b (rate 1) or c (rate 3): P(hit b first) = 1/4.
        chain = ContinuousTimeMarkovChain(
            ["a", "b", "c"], TransitionRates({("a", "b"): 1.0, ("a", "c"): 3.0})
        )
        assert chain.absorption_probability("a", ["b"], ["b", "c"]) == pytest.approx(0.25)

    def test_transient_distribution_decay(self):
        chain = ContinuousTimeMarkovChain(
            ["alive", "dead"], TransitionRates({("alive", "dead"): 1.0})
        )
        dist = chain.transient_distribution("alive", 2.0)
        assert dist["alive"] == pytest.approx(math.exp(-2.0))

    def test_unreachable_absorption_is_infinite(self):
        chain = ContinuousTimeMarkovChain(
            ["a", "b", "c"], TransitionRates({("a", "b"): 1.0, ("b", "a"): 1.0})
        )
        assert chain.expected_time_to_absorption("a", ["c"]) == math.inf

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            ContinuousTimeMarkovChain([], TransitionRates({}))
        with pytest.raises(InvalidConfigurationError):
            TransitionRates({("a", "a"): 1.0})
        with pytest.raises(InvalidConfigurationError):
            TransitionRates({("a", "b"): -1.0})
        with pytest.raises(InvalidConfigurationError):
            ContinuousTimeMarkovChain(["a"], TransitionRates({("a", "b"): 1.0}))


class TestClusterModel:
    def test_no_repair_mttf_harmonic_sum(self):
        # Without repair, E[time to all n failed] = Σ 1/(kλ) over survivors.
        n, lam = 3, 1e-3
        model = ClusterMarkovModel(n, lam, 0.0, repair_slots=0)
        expected = sum(1.0 / (k * lam) for k in range(1, n + 1))
        assert model.mean_time_to_failure_count(3) == pytest.approx(expected)

    def test_repair_extends_mttf(self):
        without = ClusterMarkovModel(5, 1e-3, 0.0).mttf_liveness(3)
        with_repair = ClusterMarkovModel(5, 1e-3, 0.1).mttf_liveness(3)
        assert with_repair > 10 * without

    def test_mttdl_exceeds_liveness_mttf(self):
        # Losing all quorum copies (4 down) takes longer than losing quorum
        # availability (3 down) in a 5-node majority system... here thresholds:
        model = ClusterMarkovModel(5, 1e-3, 0.05)
        assert model.mttdl(4) > model.mttf_liveness(3)

    def test_faster_nodes_fail_sooner(self):
        slow = ClusterMarkovModel(5, 1e-4, 0.01).mttf_liveness(3)
        fast = ClusterMarkovModel(5, 1e-2, 0.01).mttf_liveness(3)
        assert fast < slow

    def test_steady_state_availability_close_to_one(self):
        model = ClusterMarkovModel(5, 1e-4, 0.1)
        availability = model.steady_state_availability(3)
        assert 0.999 < availability < 1.0

    def test_availability_needs_repair(self):
        with pytest.raises(InvalidConfigurationError):
            ClusterMarkovModel(3, 1e-3, 0.0).steady_state_availability(2)

    def test_window_unavailability_matches_binomial(self):
        from scipy import stats

        model = ClusterMarkovModel(5, 1e-3, 0.0)
        window = 100.0
        p = -math.expm1(-1e-3 * window)
        expected = float(stats.binom.sf(2, 5, p))
        assert model.window_unavailability(3, window) == pytest.approx(expected)

    def test_repair_slots_parallelism(self):
        serial = ClusterMarkovModel(9, 1e-3, 0.05, repair_slots=1).mttf_liveness(5)
        parallel = ClusterMarkovModel(9, 1e-3, 0.05, repair_slots=9).mttf_liveness(5)
        assert parallel > serial

    def test_comparison_helper(self):
        models = {
            "3@1e-3": ClusterMarkovModel(3, 1e-3, 0.05),
            "5@1e-3": ClusterMarkovModel(5, 1e-3, 0.05),
        }
        result = mttf_comparison(models, {"3@1e-3": 2, "5@1e-3": 3})
        assert result["5@1e-3"] > result["3@1e-3"]

    def test_comparison_missing_quorum(self):
        with pytest.raises(InvalidConfigurationError):
            mttf_comparison({"x": ClusterMarkovModel(3, 1e-3, 0.0)}, {})

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            ClusterMarkovModel(0, 1e-3, 0.0)
        with pytest.raises(InvalidConfigurationError):
            ClusterMarkovModel(3, -1e-3, 0.0)
        with pytest.raises(InvalidConfigurationError):
            ClusterMarkovModel(3, 1e-3, 0.0).mttdl(4)
