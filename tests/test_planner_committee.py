"""Unit tests for committee-sampled deployment planning."""

from __future__ import annotations

import pytest

from repro.analysis.counting import counting_reliability
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import NodeModel, heterogeneous_fleet, uniform_fleet
from repro.planner.committee import (
    committee_reliability,
    smallest_committee_for_target,
)
from repro.protocols.raft import RaftSpec


class TestCommitteeReliability:
    def test_homogeneous_collapses_to_single_eval(self):
        fleet = uniform_fleet(100, 0.01)
        assessment = committee_reliability(RaftSpec, fleet, 5)
        expected = counting_reliability(RaftSpec(5), uniform_fleet(5, 0.01))
        assert assessment.method == "homogeneous"
        assert assessment.safe_and_live == pytest.approx(expected.safe_and_live.value)

    def test_heterogeneous_exact_enumeration(self):
        fleet = heterogeneous_fleet([(3, NodeModel(0.01)), (3, NodeModel(0.2))])
        assessment = committee_reliability(RaftSpec, fleet, 3)
        assert assessment.method.startswith("exact")
        # Sanity bounds: between all-reliable and all-flaky committees.
        best = counting_reliability(RaftSpec(3), uniform_fleet(3, 0.01)).safe_and_live.value
        worst = counting_reliability(RaftSpec(3), uniform_fleet(3, 0.2)).safe_and_live.value
        assert worst < assessment.safe_and_live < best

    def test_sampled_path_close_to_exact(self):
        fleet = heterogeneous_fleet([(3, NodeModel(0.01)), (3, NodeModel(0.2))])
        exact = committee_reliability(RaftSpec, fleet, 3)
        import repro.planner.committee as committee_module

        original = committee_module._EXACT_COMMITTEE_LIMIT
        committee_module._EXACT_COMMITTEE_LIMIT = 1  # force sampling
        try:
            sampled = committee_reliability(RaftSpec, fleet, 3, samples=3_000, seed=0)
        finally:
            committee_module._EXACT_COMMITTEE_LIMIT = original
        assert sampled.method.startswith("sampled")
        assert sampled.safe_and_live == pytest.approx(exact.safe_and_live, abs=0.01)

    def test_validation(self):
        fleet = uniform_fleet(5, 0.1)
        with pytest.raises(InvalidConfigurationError):
            committee_reliability(RaftSpec, fleet, 0)
        with pytest.raises(InvalidConfigurationError):
            committee_reliability(RaftSpec, fleet, 9)


class TestSmallestCommittee:
    def test_reliable_pool_allows_small_committee(self):
        fleet = uniform_fleet(100, 0.001)
        assessment = smallest_committee_for_target(RaftSpec, fleet, 5.0)
        assert assessment is not None
        assert assessment.committee_size <= 7

    def test_higher_target_needs_bigger_committee(self):
        fleet = uniform_fleet(100, 0.01)
        low = smallest_committee_for_target(RaftSpec, fleet, 3.0)
        high = smallest_committee_for_target(RaftSpec, fleet, 6.0)
        assert low is not None and high is not None
        assert high.committee_size > low.committee_size

    def test_unreachable_target(self):
        fleet = uniform_fleet(9, 0.3)
        assert smallest_committee_for_target(RaftSpec, fleet, 9.0) is None

    def test_invalid_target(self):
        with pytest.raises(InvalidConfigurationError):
            smallest_committee_for_target(RaftSpec, uniform_fleet(5, 0.1), 0.0)
