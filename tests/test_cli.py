"""CLI tests (argument parsing and table output)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "99.99901%" in out  # the N=5 safety cell (paper: 99.9990%)
        assert "Table 1" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "99.970%" in out  # N=3, p=1%
        assert "Table 2" in out


class TestSingleAnalyses:
    def test_raft(self, capsys):
        assert main(["raft", "--n", "3", "--p", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "99.970%" in out

    def test_raft_flexible_quorums(self, capsys):
        assert main(["raft", "--n", "5", "--p", "0.01", "--q-per", "2", "--q-vc", "4"]) == 0
        out = capsys.readouterr().out
        assert "100%" in out  # structurally safe pair

    def test_pbft(self, capsys):
        assert main(["pbft", "--n", "4", "--p", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "99.941%" in out


class TestPlan:
    def test_feasible_plan(self, capsys):
        assert main(["plan", "--target-nines", "3.4"]) == 0
        out = capsys.readouterr().out
        assert "spot" in out

    def test_infeasible_plan(self, capsys):
        assert main(["plan", "--target-nines", "12", "--max-size", "3"]) == 1
        out = capsys.readouterr().out
        assert "no plan" in out


class TestSensitivity:
    def test_ranks_reliable_nodes_on_mixed_fleet(self, capsys):
        assert main(["sensitivity", "--n", "7", "--p", "0.08,0.08,0.08,0.08,0.01,0.01,0.01"]) == 0
        out = capsys.readouterr().out
        first_row = [line for line in out.splitlines() if line.startswith("1 ")][0]
        assert " 4 " in first_row  # a reliable node tops the ranking

    def test_single_probability_broadcast(self, capsys):
        assert main(["sensitivity", "--n", "3", "--p", "0.05"]) == 0
        out = capsys.readouterr().out
        assert out.count("0.0500") == 3

    def test_wrong_probability_count(self):
        with pytest.raises(SystemExit):
            main(["sensitivity", "--n", "3", "--p", "0.1,0.2"])


class TestCommittee:
    def test_finds_small_committee(self, capsys):
        assert main(["committee", "--n", "100", "--p", "0.01", "--target-nines", "4"]) == 0
        out = capsys.readouterr().out
        assert "smallest committee: 5" in out

    def test_unreachable_target(self, capsys):
        assert main(["committee", "--n", "5", "--p", "0.3", "--target-nines", "9"]) == 1
        assert "no committee" in capsys.readouterr().out


class TestScenarios:
    def test_scenario_file_end_to_end(self, capsys, tmp_path):
        path = tmp_path / "deployments.json"
        path.write_text(
            """
            {"scenarios": [
              {"spec": {"protocol": "raft", "n": 3},
               "fleet": {"uniform": {"n": 3, "p_fail": 0.01}},
               "label": "headline"},
              {"spec": {"protocol": "pbft", "n": 4},
               "fleet": {"uniform": {"n": 4, "p_fail": 0.01,
                                     "byzantine_fraction": 1.0}}}
            ]}
            """
        )
        assert main(["scenarios", str(path)]) == 0
        out = capsys.readouterr().out
        assert "headline" in out
        assert "99.970%" in out  # the paper's 3-node Raft cell
        assert "99.941%" in out  # the paper's 4-node PBFT cell

    def test_grid_shorthand_and_json_output(self, capsys, tmp_path):
        import json

        path = tmp_path / "grid.json"
        path.write_text(
            '{"grid": {"protocols": ["raft"], "sizes": [3, 5],'
            ' "probabilities": [0.01, 0.05]}}'
        )
        assert main(["scenarios", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 4
        assert all(row["estimator"] == "counting" for row in payload)

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "/nonexistent/scenarios.json"])

    def test_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"scenarios": [{"spec": {"protocol": "fnord"}}]}')
        with pytest.raises(SystemExit):
            main(["scenarios", str(path)])


class TestMTTF:
    def test_prints_metrics(self, capsys):
        assert main(["mttf", "--n", "5", "--afr", "0.08", "--mttr-hours", "24"]) == 0
        out = capsys.readouterr().out
        assert "MTTDL" in out
        assert "availability" in out

    def test_json_output_matches_builders(self, capsys):
        import json

        from repro.faults.afr import afr_to_hourly_rate
        from repro.markov.builders import ClusterMarkovModel

        assert main(
            ["mttf", "--n", "5", "--afr", "0.08", "--mttr-hours", "24", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        model = ClusterMarkovModel(5, afr_to_hourly_rate(0.08), 1.0 / 24.0)
        assert payload["quorum_size"] == 3
        assert payload["mttf_hours"] == model.mttf_liveness(3)
        assert payload["mttdl_hours"] == model.mttdl(3)
        assert payload["availability"] == model.steady_state_availability(3)

    def test_table_identical_to_legacy_rendering(self, capsys):
        """The engine-backed mttf table renders the builders' numbers."""
        from repro.faults.afr import afr_to_hourly_rate
        from repro.markov.builders import ClusterMarkovModel

        assert main(["mttf", "--n", "7", "--afr", "0.04", "--mttr-hours", "12"]) == 0
        out = capsys.readouterr().out
        model = ClusterMarkovModel(7, afr_to_hourly_rate(0.04), 1.0 / 12.0)
        assert f"{model.mttf_liveness(4) / 8766.0:.3e}" in out
        assert f"{model.steady_state_availability(4):.10f}" in out


class TestQueryFile:
    MIXED = """
    {"queries": [
      {"spec": {"protocol": "raft", "n": 3},
       "fleet": {"uniform": {"n": 3, "p_fail": 0.01}},
       "label": "headline"},
      {"kind": "availability",
       "scenario": {"spec": {"protocol": "raft", "n": 5},
                    "fleet": {"uniform": {"n": 5, "p_fail": 0.01}},
                    "label": "steady"},
       "failure_rate_per_hour": 1e-5, "repair_rate_per_hour": 0.04,
       "window_hours": 720},
      {"kind": "mttf",
       "scenario": {"spec": {"protocol": "raft", "n": 5},
                    "fleet": {"uniform": {"n": 5, "p_fail": 0.01}},
                    "label": "horizonless"},
       "failure_rate_per_hour": 1e-5, "repair_rate_per_hour": 0.04},
      {"kind": "simulation",
       "scenario": {"spec": {"protocol": "raft", "n": 3},
                    "fleet": {"uniform": {"n": 3, "p_fail": 0.2}},
                    "seed": 42, "label": "campaign"},
       "replicas": 4, "duration": 6.0, "commands": 2}
    ]}
    """

    def test_mixed_query_file_end_to_end(self, capsys, tmp_path):
        path = tmp_path / "questions.json"
        path.write_text(self.MIXED)
        assert main(["query", str(path)]) == 0
        out = capsys.readouterr().out
        for label in ("headline", "steady", "horizonless", "campaign"):
            assert label in out
        assert "99.970%" in out  # the reliability row keeps the paper cell
        assert "availability" in out
        assert "MTTF" in out
        assert "runs" in out

    def test_mixed_query_file_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "questions.json"
        path.write_text(self.MIXED)
        assert main(["query", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["kind"] for row in payload] == [
            "reliability",
            "availability",
            "mttf",
            "simulation",
        ]
        assert payload[1]["answer"]["availability"] > 0.999
        assert payload[3]["answer"]["replicas"] == 4

    def test_scenario_file_is_a_valid_query_file(self, capsys, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            '{"grid": {"protocols": ["raft"], "sizes": [3], "probabilities": [0.01]}}'
        )
        assert main(["query", str(path)]) == 0
        assert "reliability" in capsys.readouterr().out

    def test_query_file_with_fault_plan(self, capsys, tmp_path):
        # A simulation row embedding a fault plan: the Theorem 3.1 PBFT
        # attack plus a healed partition, straight from JSON.
        import json

        path = tmp_path / "attack.json"
        path.write_text(
            """
            {"queries": [
              {"kind": "simulation",
               "scenario": {"spec": {"protocol": "pbft", "n": 4},
                            "fleet": {"uniform": {"n": 4, "p_fail": 0.0}},
                            "seed": 13, "label": "thm31"},
               "replicas": 2, "duration": 8.0, "commands": 1,
               "faults": {"sample_faults": false,
                          "adversary": {"nodes": [0, 2]},
                          "events": [{"kind": "partition",
                                      "groups": [[0, 1], [2, 3]],
                                      "at": 6.0, "heal_at": 7.0}]}}
            ]}
            """
        )
        assert main(["query", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["kind"] == "simulation"
        # the embedded adversary splits the cluster in every replica
        assert payload[0]["answer"]["safety_violations"] == 2

    def test_query_file_bad_fault_plan_rejected(self, tmp_path):
        path = tmp_path / "bad-plan.json"
        path.write_text(
            '{"queries": [{"kind": "simulation",'
            ' "scenario": {"spec": {"protocol": "raft", "n": 3},'
            ' "fleet": {"uniform": {"n": 3, "p_fail": 0.0}}},'
            ' "faults": {"events": [{"kind": "fnord"}]}}]}'
        )
        with pytest.raises(SystemExit, match="invalid query file"):
            main(["query", str(path)])

    def test_query_jobs_deterministic(self, capsys, tmp_path):
        import json

        path = tmp_path / "campaign.json"
        path.write_text(
            '{"queries": [{"kind": "simulation",'
            ' "scenario": {"spec": {"protocol": "raft", "n": 3},'
            ' "fleet": {"uniform": {"n": 3, "p_fail": 0.2}}, "seed": 7},'
            ' "replicas": 4, "duration": 6.0, "commands": 2}]}'
        )

        def counts(raw):
            rows = json.loads(raw)
            return [
                (r["answer"]["safety_violations"], r["answer"]["liveness_violations"])
                for r in rows
            ]

        assert main(["query", str(path), "--json"]) == 0
        serial = counts(capsys.readouterr().out)
        assert main(["query", str(path), "--json", "--jobs", "2"]) == 0
        assert counts(capsys.readouterr().out) == serial

    def test_missing_query_file(self):
        with pytest.raises(SystemExit):
            main(["query", "/nonexistent/questions.json"])

    def test_invalid_query_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"queries": [{"kind": "fnord"}]}')
        with pytest.raises(SystemExit):
            main(["query", str(path)])


class TestParser:
    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["fnord"])


class TestJobsFlag:
    """--jobs fans work over workers without changing any printed number."""

    def test_sweep_jobs_output_identical_to_serial(self, capsys):
        assert main(["sweep", "--n", "9", "--p", "0.01,0.02,0.05"]) == 0
        serial = capsys.readouterr().out
        assert main(["sweep", "--n", "9", "--p", "0.01,0.02,0.05", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_raft_jobs_output_identical_to_serial(self, capsys):
        assert main(["raft", "--n", "5", "--p", "0.01"]) == 0
        serial = capsys.readouterr().out
        assert main(["raft", "--n", "5", "--p", "0.01", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_scenarios_jobs_deterministic(self, capsys, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            '{"grid": {"protocols": ["raft"], "sizes": [3, 5],'
            ' "probabilities": [0.01], "method": "monte-carlo",'
            ' "trials": 20000, "seed": 7}}'
        )
        import json

        def values(text):
            # Drop provenance flags: the second run legitimately hits the
            # default engine's memo cache; the numbers must not move.
            return [
                {k: v for k, v in row.items() if k not in ("cache_hit", "batched")}
                for row in json.loads(text)
            ]

        assert main(["scenarios", str(path), "--json", "--jobs", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["scenarios", str(path), "--json", "--jobs", "2"]) == 0
        assert values(capsys.readouterr().out) == values(first)
        assert main(["scenarios", str(path), "--json", "--jobs", "3"]) == 0
        assert values(capsys.readouterr().out) == values(first)
