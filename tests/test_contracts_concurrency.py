"""Tests for the concurrency rule families (repro.contracts.rules_concurrency).

Every family is proven both to fire on a minimal bad snippet and to stay
quiet on the corresponding good snippet, in the Thm fire-AND-stay-quiet
style of test_contracts.py.  The centrepiece is the pre-PR-8 regression
corpus: the historical engine-memo and journal-truncation bugs PR 8
fixed by hand, vendored verbatim, with the lock discipline that PR
introduced — ``lock-guard`` must pinpoint every access the fix had to
guard.  SARIF output and the versioned JSON schema are round-trip-tested
here too, alongside the CLI's unknown-rule and ``--explain list``
behaviour.
"""

import json
import textwrap

import pytest

from repro.cli import main
from repro.contracts import (
    DEFAULT_CONFIG,
    LintResult,
    lint_sources,
    registered_rules,
    render_json,
    render_sarif,
)
from repro.contracts.core import Finding

pytestmark = [pytest.mark.lint, pytest.mark.lint_concurrency]

CONCURRENCY_RULES = (
    "lock-guard",
    "lock-order",
    "async-hygiene",
    "journal-durability",
)


def run(source, *, path="app/mod.py", rules=None, extra=None):
    """Lint dedented in-memory modules and return the findings."""
    sources = {path: textwrap.dedent(source)}
    for extra_path, extra_source in (extra or {}).items():
        sources[extra_path] = textwrap.dedent(extra_source)
    return lint_sources(sources, config=DEFAULT_CONFIG, rules=rules)


def rule_ids(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# lock-guard
# ---------------------------------------------------------------------------
class TestLockGuard:
    def test_fires_on_lock_free_read_of_guarded_attribute(self):
        findings = run(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value

                def get(self, key):
                    return self._entries.get(key)
            """,
            rules=["lock-guard"],
        )
        assert rule_ids(findings) == ["lock-guard"]
        assert "`self._entries`" in findings[0].message
        assert "self._lock" in findings[0].message

    def test_stays_quiet_when_every_access_is_guarded(self):
        findings = run(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value

                def get(self, key):
                    with self._lock:
                        return self._entries.get(key)
            """,
            rules=["lock-guard"],
        )
        assert findings == []

    def test_mutator_calls_count_as_writes(self):
        findings = run(
            """
            import threading

            class Events:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._pending = []

                def push(self, event):
                    with self._lock:
                        self._pending.append(event)

                def drain(self):
                    self._pending.clear()
            """,
            rules=["lock-guard"],
        )
        assert rule_ids(findings) == ["lock-guard"]
        assert findings[0].line == 14  # the unguarded clear()

    def test_private_helper_called_under_lock_is_credited(self):
        findings = run(
            """
            import threading

            class Journal:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._stale = False

                def load(self):
                    with self._lock:
                        return self._load_locked()

                def _load_locked(self):
                    self._stale = True
                    return {}
            """,
            rules=["lock-guard"],
        )
        assert findings == []

    def test_public_method_inherits_nothing_from_callers(self):
        # `refresh` is called under the lock once, but it is public — an
        # external caller can invoke it lock-free, so its unguarded write
        # must still fire.
        findings = run(
            """
            import threading

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = None

                def tick(self):
                    with self._lock:
                        self._state = "ticking"
                        self.refresh()

                def refresh(self):
                    self._state = "fresh"
            """,
            rules=["lock-guard"],
        )
        assert rule_ids(findings) == ["lock-guard"]
        assert "`self._state`" in findings[0].message

    def test_init_writes_are_exempt_and_unlocked_classes_are_ignored(self):
        findings = run(
            """
            class Plain:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
            """,
            rules=["lock-guard"],
        )
        assert findings == []

    def test_inline_allow_suppresses_a_justified_site(self):
        findings = run(
            """
            import threading

            class Metrics:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0

                def bump(self):
                    with self._lock:
                        self.hits += 1

                def peek(self):
                    # repro: allow[lock-guard] -- racy read is advisory-only
                    return self.hits
            """,
            rules=["lock-guard"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# lock-order
# ---------------------------------------------------------------------------
class TestLockOrder:
    def test_fires_on_opposite_acquisition_orders(self):
        findings = run(
            """
            import threading

            A_LOCK = threading.Lock()
            B_LOCK = threading.Lock()

            def forward():
                with A_LOCK:
                    with B_LOCK:
                        pass

            def backward():
                with B_LOCK:
                    with A_LOCK:
                        pass
            """,
            rules=["lock-order"],
        )
        assert rule_ids(findings) == ["lock-order"]
        assert "A_LOCK" in findings[0].message and "B_LOCK" in findings[0].message
        assert "deadlock" in findings[0].message

    def test_stays_quiet_on_one_global_order(self):
        findings = run(
            """
            import threading

            A_LOCK = threading.Lock()
            B_LOCK = threading.Lock()

            def first():
                with A_LOCK:
                    with B_LOCK:
                        pass

            def second():
                with A_LOCK:
                    with B_LOCK:
                        pass
            """,
            rules=["lock-order"],
        )
        assert findings == []

    def test_rlock_reentry_is_not_a_cycle(self):
        findings = run(
            """
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """,
            rules=["lock-order"],
        )
        assert findings == []

    def test_cycle_through_a_method_call_is_found(self):
        # transfer() holds Account._lock and calls _audit(), which takes
        # AUDIT_LOCK; report() nests them the other way round — one side
        # of the cycle only exists interprocedurally.
        findings = run(
            """
            import threading

            AUDIT_LOCK = threading.Lock()

            class Account:
                def __init__(self):
                    self._lock = threading.Lock()

                def transfer(self):
                    with self._lock:
                        self._audit()

                def _audit(self):
                    with AUDIT_LOCK:
                        pass

                def report(self):
                    with AUDIT_LOCK:
                        with self._lock:
                            pass
            """,
            rules=["lock-order"],
        )
        assert rule_ids(findings) == ["lock-order"]
        assert "AUDIT_LOCK" in findings[0].message
        assert "Account._lock" in findings[0].message

    def test_cross_file_orders_share_one_graph(self):
        findings = run(
            """
            import threading
            A_LOCK = threading.Lock()
            B_LOCK = threading.Lock()

            def forward():
                with A_LOCK:
                    with B_LOCK:
                        pass
            """,
            extra={
                "app/other.py": """
                from app.mod import A_LOCK, B_LOCK

                def backward():
                    with B_LOCK:
                        with A_LOCK:
                            pass
                """
            },
            rules=["lock-order"],
        )
        assert rule_ids(findings) == ["lock-order"]


# ---------------------------------------------------------------------------
# async-hygiene
# ---------------------------------------------------------------------------
class TestAsyncHygiene:
    def test_fires_on_blocking_calls_in_async_def(self):
        findings = run(
            """
            import time
            import os

            async def handle(request):
                time.sleep(0.1)
                os.fsync(3)
            """,
            rules=["async-hygiene"],
        )
        assert rule_ids(findings) == ["async-hygiene", "async-hygiene"]
        assert "time.sleep" in findings[0].message
        assert "os.fsync" in findings[1].message

    def test_fires_on_direct_engine_run_and_open(self):
        findings = run(
            """
            async def handle(self, queries):
                config = open("config.json").read()
                return self._engine.run(queries)
            """,
            rules=["async-hygiene"],
        )
        messages = " / ".join(f.message for f in findings)
        assert rule_ids(findings) == ["async-hygiene", "async-hygiene"]
        assert "open()" in messages and "engine" in messages

    def test_stays_quiet_when_routed_through_executor(self):
        findings = run(
            """
            import asyncio
            import time

            async def handle(self, queries):
                await asyncio.to_thread(time.sleep, 0.1)
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, self._engine.run, queries)
            """,
            rules=["async-hygiene"],
        )
        assert findings == []

    def test_nested_defs_are_executor_payloads_not_violations(self):
        findings = run(
            """
            import asyncio
            import time

            async def handle(self):
                def blocking_payload():
                    time.sleep(0.1)
                    return open("data").read()
                return await asyncio.to_thread(blocking_payload)
            """,
            rules=["async-hygiene"],
        )
        assert findings == []

    def test_blocking_calls_in_sync_defs_are_fine(self):
        findings = run(
            """
            import time

            def worker():
                time.sleep(0.1)
            """,
            rules=["async-hygiene"],
        )
        assert findings == []

    def test_fires_on_discarded_create_task(self):
        findings = run(
            """
            import asyncio

            async def spawn(self):
                asyncio.create_task(self._poll())

            async def _poll(self):
                pass
            """,
            rules=["async-hygiene"],
        )
        assert rule_ids(findings) == ["async-hygiene"]
        assert "create_task" in findings[0].message

    def test_fires_on_unawaited_coroutine_statement(self):
        findings = run(
            """
            async def refresh(self):
                pass

            async def handle(self):
                self.refresh()
            """,
            rules=["async-hygiene"],
        )
        assert rule_ids(findings) == ["async-hygiene"]
        assert "never run" in findings[0].message

    def test_sync_name_twin_keeps_thread_start_legal(self):
        # ReliabilityService.start is async, threading.Thread.start is sync:
        # a bare-name heuristic must not flag `self._thread.start()`.
        findings = run(
            """
            class Service:
                async def start(self):
                    self._thread.start()

            class Thread:
                def start(self):
                    pass
            """,
            rules=["async-hygiene"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# journal-durability
# ---------------------------------------------------------------------------
class TestJournalDurability:
    def test_fires_on_unsynced_write_under_journal_lock(self):
        findings = run(
            """
            import os

            def record(path, entry, lock):
                with _journal_lock(path):
                    fd = os.open(path, os.O_APPEND | os.O_WRONLY)
                    os.write(fd, entry)
                    os.close(fd)
            """,
            path="app/checkpoint.py",
            rules=["journal-durability"],
        )
        assert rule_ids(findings) == ["journal-durability"]
        assert "os.fsync" in findings[0].message
        assert "lock is released" in findings[0].message

    def test_stays_quiet_when_fsync_precedes_lock_release(self):
        findings = run(
            """
            import os

            def record(path, entry):
                with _journal_lock(path):
                    fd = os.open(path, os.O_APPEND | os.O_WRONLY)
                    os.write(fd, entry)
                    os.fsync(fd)
                    os.close(fd)
            """,
            path="app/checkpoint.py",
            rules=["journal-durability"],
        )
        assert findings == []

    def test_flush_is_not_durability_and_fileno_form_is(self):
        findings = run(
            """
            import os

            def flushed_only(path, line):
                with path.open("a") as handle:
                    handle.write(line)
                    handle.flush()

            def synced(path, line):
                with path.open("a") as handle:
                    handle.write(line)
                    os.fsync(handle.fileno())
            """,
            path="app/journal.py",
            rules=["journal-durability"],
        )
        assert rule_ids(findings) == ["journal-durability"]
        assert findings[0].line == 6  # flushed_only's write, not synced's

    def test_only_declared_journal_paths_are_in_scope(self):
        source = """
            def report(path, text):
                with path.open("w") as handle:
                    handle.write(text)
        """
        assert run(source, path="app/render.py", rules=["journal-durability"]) == []
        assert rule_ids(
            run(source, path="app/journal.py", rules=["journal-durability"])
        ) == ["journal-durability"]


# ---------------------------------------------------------------------------
# The pre-PR-8 regression corpus
# ---------------------------------------------------------------------------
# The engine-memo race PR 8 fixed by hand: `cache_lookup` is the verbatim
# pre-PR-8 body (unguarded get/move_to_end/counter writes); `cache_store`
# carries the lock discipline that PR introduced.  The moment any site
# takes the lock, lock-guard pinpoints every remaining unguarded access —
# exactly the sites the fix had to find manually.
PRE_PR8_ENGINE = """
import threading
from collections import OrderedDict


class ReliabilityEngine:
    def __init__(self, cache_size=1024):
        self._cache_size = cache_size
        self._memo = OrderedDict()
        self._lock = threading.RLock()
        self.cache_hits = 0
        self.cache_misses = 0

    def cache_lookup(self, key):
        if key is None or self._cache_size == 0:
            return None
        value = self._memo.get(key)
        if value is not None:
            self._memo.move_to_end(key)
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        return value

    def cache_store(self, key, value):
        if key is None or self._cache_size == 0:
            return
        with self._lock:
            self._memo[key] = value
            while len(self._memo) > self._cache_size:
                self._memo.popitem(last=False)
"""

# The journal truncation race: `record` is the verbatim pre-PR-8 body —
# "w"-mode truncation decided from `_stale`/`_loaded` with no lock held,
# and a flush() standing in for durability; `load` carries PR 8's journal
# lock, under which `_load_locked` writes both flags.
PRE_PR8_JOURNAL = """
import json


class CampaignCheckpoint:
    def __init__(self, path):
        self.path = path
        self._loaded = False
        self._stale = False

    def load(self):
        with _journal_lock(self.path):
            return self._load_locked()

    def _load_locked(self):
        self._loaded = True
        self._stale = False
        return {}

    def record(self, index, value):
        if not self._loaded:
            self.load()
        fresh = self._stale or not self.path.exists()
        mode = "w" if fresh else "a"
        with self.path.open(mode) as handle:
            if fresh:
                handle.write(self._header() + "\\n")
                self._stale = False
            handle.write(json.dumps({"shard": int(index)}) + "\\n")
            handle.flush()

    def _header(self):
        return "{}"
"""


class TestPrePR8RegressionCorpus:
    def test_lock_guard_refinds_the_engine_memo_race(self):
        findings = run(PRE_PR8_ENGINE, rules=["lock-guard"])
        assert findings, "lock-guard must re-find the pre-PR-8 memo race"
        assert set(rule_ids(findings)) == {"lock-guard"}
        flagged_lines = {f.line for f in findings}
        # Both unguarded memo touches in cache_lookup: the racy get() and
        # the move_to_end() that threw KeyError mid-eviction in production.
        assert {17, 19}.issubset(flagged_lines)
        assert all("`self._memo`" in f.message for f in findings)

    def test_lock_guard_refinds_the_journal_stale_race(self):
        findings = run(PRE_PR8_JOURNAL, rules=["lock-guard"])
        assert findings, "lock-guard must re-find the pre-PR-8 journal race"
        attrs = {f.message.split("`")[1] for f in findings}
        # `_stale` decides "w"-mode truncation and is flipped back, and
        # `_loaded` is consulted — all outside the journal lock that
        # _load_locked writes them under.
        assert attrs == {"self._stale", "self._loaded"}
        assert all(f.line >= 21 for f in findings)  # all inside record()

    def test_journal_durability_flags_the_flush_only_record(self):
        findings = run(
            PRE_PR8_JOURNAL, path="app/checkpoint.py", rules=["journal-durability"]
        )
        assert rule_ids(findings) == ["journal-durability", "journal-durability"]

    def test_the_fixed_shapes_stay_quiet(self):
        findings = run(
            """
            import json
            import os
            import threading
            from collections import OrderedDict


            class ReliabilityEngine:
                def __init__(self, cache_size=1024):
                    self._cache_size = cache_size
                    self._memo = OrderedDict()
                    self._lock = threading.RLock()
                    self.cache_hits = 0

                def cache_lookup(self, key):
                    with self._lock:
                        value = self._memo.get(key)
                        if value is not None:
                            self._memo.move_to_end(key)
                            self.cache_hits += 1
                    return value


            class CampaignCheckpoint:
                def __init__(self, path):
                    self.path = path
                    self._stale = False

                def record(self, index, value):
                    with _journal_lock(self.path):
                        self._stale = False
                        fd = os.open(self.path, os.O_APPEND | os.O_WRONLY)
                        os.write(fd, json.dumps({"shard": int(index)}).encode())
                        os.fsync(fd)
                        os.close(fd)
            """,
            path="app/checkpoint.py",
            rules=["lock-guard", "journal-durability"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Report round-trips: versioned JSON and SARIF
# ---------------------------------------------------------------------------
def _result_with_baseline():
    new = Finding(path="a.py", line=3, col=0, rule="lock-guard", message="fresh")
    old = Finding(path="b.py", line=7, col=4, rule="lock-order", message="known")
    return LintResult(
        findings=(new, old), new=(new,), baselined=(old,), files_checked=2
    )


class TestReportRoundTrips:
    def test_json_schema_round_trips_to_identical_findings(self):
        result = _result_with_baseline()
        data = json.loads(render_json(result))
        assert data["version"] == 1
        rebuilt = [
            Finding(
                path=row["path"],
                line=row["line"],
                col=row["col"],
                rule=row["rule"],
                message=row["message"],
            )
            for row in data["findings"]
        ]
        assert rebuilt == list(result.findings)
        assert [row["baselined"] for row in data["findings"]] == [False, True]

    def test_sarif_round_trips_and_carries_baseline_state(self):
        data = json.loads(render_sarif(_result_with_baseline()))
        assert data["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in data["$schema"]
        (run_obj,) = data["runs"]
        descriptor_ids = {rule["id"] for rule in run_obj["tool"]["driver"]["rules"]}
        assert descriptor_ids == set(registered_rules())
        results = run_obj["results"]
        assert [r["ruleId"] for r in results] == ["lock-guard", "lock-order"]
        assert [r["baselineState"] for r in results] == ["new", "unchanged"]
        assert [r["level"] for r in results] == ["error", "note"]
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 1}  # col 0 -> 1-based

    def test_sarif_of_a_clean_result_is_valid_and_empty(self):
        data = json.loads(
            render_sarif(LintResult(findings=(), new=(), baselined=(), files_checked=1))
        )
        assert data["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# CLI: --rules validation, --explain enumeration, --format sarif
# ---------------------------------------------------------------------------
class TestCli:
    def test_unknown_rule_exits_2_listing_every_valid_id(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["lint", "--rules", "no-such-rule", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "no-such-rule" in err
        for rule_id in registered_rules():
            assert rule_id in err

    def test_known_rules_still_filter(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["lint", "--rules", "lock-guard,lock-order", str(tmp_path)]) == 0

    def test_explain_list_enumerates_all_families(self, capsys):
        assert main(["lint", "--explain", "list"]) == 0
        out = capsys.readouterr().out
        for rule_id in CONCURRENCY_RULES:
            assert rule_id in out

    def test_explain_concurrency_rules_have_examples(self, capsys):
        for rule_id in CONCURRENCY_RULES:
            assert main(["lint", "--explain", rule_id]) == 0
            out = capsys.readouterr().out
            assert "Bad:" in out and "Good:" in out
            assert f"allow[{rule_id}]" in out

    def test_format_sarif_emits_parseable_sarif(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["lint", "--format", "sarif", str(tmp_path)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == "2.1.0"

    def test_json_flag_is_an_alias_for_format_json(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["lint", "--json", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out)["version"] == 1
