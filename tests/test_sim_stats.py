"""Unit tests for trace performance statistics."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError
from repro.sim.stats import (
    LatencySummary,
    commit_latencies,
    latency_summary,
    leadership_stats,
    unavailable_windows,
)
from repro.sim.trace import TraceRecorder


def _trace(commits=(), events=()):
    trace = TraceRecorder()
    for time, node, slot, value in commits:
        trace.record_commit(time, node, slot, value)
    for time, node, kind in events:
        trace.record_event(time, node, kind)
    return trace


class TestCommitLatencies:
    def test_first_vs_all_scope(self):
        trace = _trace(commits=[(1.0, 0, 1, "a"), (3.0, 1, 1, "a")])
        submits = {"a": 0.5}
        assert commit_latencies(trace, submits, scope="first")["a"] == pytest.approx(0.5)
        assert commit_latencies(trace, submits, scope="all")["a"] == pytest.approx(2.5)

    def test_uncommitted_commands_omitted(self):
        trace = _trace(commits=[(1.0, 0, 1, "a")])
        latencies = commit_latencies(trace, {"a": 0.5, "ghost": 0.1})
        assert "ghost" not in latencies

    def test_unknown_scope(self):
        with pytest.raises(InvalidConfigurationError):
            commit_latencies(_trace(), {}, scope="median")

    def test_summary_statistics(self):
        trace = _trace(
            commits=[(1.0 + i * 0.1, 0, i, f"c{i}") for i in range(10)]
        )
        submits = {f"c{i}": 1.0 for i in range(10)}
        summary = latency_summary(trace, submits)
        assert summary.count == 10
        assert summary.p50 <= summary.p99 <= summary.maximum
        assert summary.maximum == pytest.approx(0.9)

    def test_empty_summary_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            LatencySummary.from_samples([])


class TestLeadership:
    def test_counts(self):
        trace = _trace(
            events=[(0.2, 0, "election"), (0.3, 0, "leader"), (2.0, 1, "election"), (2.1, 1, "leader")]
        )
        stats = leadership_stats(trace)
        assert stats.elections == 2
        assert stats.leaders_elected == 2
        assert stats.distinct_leaders == 2
        assert stats.final_leader == 1

    def test_empty_trace(self):
        stats = leadership_stats(_trace())
        assert stats.final_leader is None
        assert stats.elections == 0


class TestUnavailableWindows:
    def test_detects_gap(self):
        trace = _trace(commits=[(1.0, 0, 1, "a"), (6.0, 0, 2, "b")])
        gaps = unavailable_windows(trace, horizon=7.0, gap_threshold=2.0)
        assert gaps == [(1.0, 6.0)]

    def test_leading_and_trailing_gaps(self):
        trace = _trace(commits=[(5.0, 0, 1, "a")])
        gaps = unavailable_windows(trace, horizon=12.0, gap_threshold=3.0)
        assert gaps == [(0.0, 5.0), (5.0, 12.0)]

    def test_no_gaps_with_steady_commits(self):
        trace = _trace(commits=[(float(t), 0, t, f"c{t}") for t in range(1, 10)])
        assert unavailable_windows(trace, horizon=10.0, gap_threshold=2.0) == []

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            unavailable_windows(_trace(), horizon=0.0, gap_threshold=1.0)


class TestEndToEndWithSimulator:
    def test_latency_from_real_run(self):
        from repro.sim import Cluster, run_scenario
        from repro.sim.raft import raft_node_factory

        cluster = Cluster(5, raft_node_factory(), seed=3)
        commands = [f"m{i}" for i in range(10)]
        submits = {}
        cluster.start()
        cluster.run_until(1.0)
        at = 1.0
        for command in commands:
            submits[command] = at
            cluster.submit(command, at=at)
            at += 0.05
        cluster.run_until(10.0)
        summary = latency_summary(cluster.trace, submits)
        assert summary.count == 10
        assert 0.0 < summary.p50 < 1.0  # commits land within a second

    def test_leader_crash_creates_unavailability(self):
        from repro.sim import Cluster
        from repro.sim.raft import raft_node_factory
        from repro.sim.stats import leadership_stats as stats_fn

        cluster = Cluster(3, raft_node_factory(), seed=4)
        cluster.start()
        cluster.run_until(1.0)
        leader = stats_fn(cluster.trace).final_leader
        assert leader is not None
        cluster.crash_at(leader, 1.5)
        at = 1.0
        for i in range(30):
            cluster.submit(f"x{i}", at=at)
            at += 0.2
        cluster.run_until(8.0)
        gaps = unavailable_windows(cluster.trace, horizon=8.0, gap_threshold=0.3)
        assert gaps  # the election window shows up as a commit gap
