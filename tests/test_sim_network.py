"""Unit tests for the simulated network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidConfigurationError, SimulationError
from repro.sim.events import EventScheduler
from repro.sim.network import (
    FixedLatency,
    LogNormalLatency,
    Network,
    UniformLatency,
)
from repro.sim.node import IdleProcess, Process


class Recorder(Process):
    """Test process that logs every delivery."""

    def __init__(self, *args):
        super().__init__(*args)
        self.received: list[tuple[int, object]] = []

    def on_start(self) -> None:
        pass

    def on_message(self, src: int, payload: object) -> None:
        self.received.append((src, payload))


def _make_pair(drop=0.0, latency=None, seed=0):
    scheduler = EventScheduler()
    network = Network(scheduler, latency=latency, drop_probability=drop, seed=seed)
    rng = np.random.default_rng(0)
    a = Recorder(0, scheduler, network, rng)
    b = Recorder(1, scheduler, network, rng)
    network.attach(a)
    network.attach(b)
    a.start()
    b.start()
    return scheduler, network, a, b


class TestDelivery:
    def test_basic_delivery_with_latency(self):
        scheduler, network, a, b = _make_pair(latency=FixedLatency(0.01))
        network.send(0, 1, "hello")
        scheduler.run_until(0.005)
        assert b.received == []
        scheduler.run_until(0.02)
        assert b.received == [(0, "hello")]

    def test_broadcast_excludes_self_by_default(self):
        scheduler, network, a, b = _make_pair()
        network.broadcast(0, "ping")
        scheduler.run_until(1.0)
        assert a.received == []
        assert b.received == [(0, "ping")]

    def test_broadcast_include_self(self):
        scheduler, network, a, b = _make_pair()
        network.broadcast(0, "ping", include_self=True)
        scheduler.run_until(1.0)
        assert a.received == [(0, "ping")]

    def test_unknown_destination(self):
        scheduler, network, a, b = _make_pair()
        with pytest.raises(SimulationError):
            network.send(0, 7, "x")

    def test_crashed_destination_drops(self):
        scheduler, network, a, b = _make_pair()
        network.send(0, 1, "one")
        b.crash()
        scheduler.run_until(1.0)
        assert b.received == []
        assert network.messages_dropped == 1

    def test_drop_probability(self):
        scheduler, network, a, b = _make_pair(drop=0.5, seed=1)
        for _ in range(1000):
            network.send(0, 1, "m")
        scheduler.run_until(10.0)
        assert 380 <= len(b.received) <= 620
        assert network.messages_dropped + network.messages_delivered == 1000


class TestPartitions:
    def test_partition_blocks_cross_group(self):
        scheduler, network, a, b = _make_pair()
        network.set_partition([[0], [1]])
        network.send(0, 1, "blocked")
        scheduler.run_until(1.0)
        assert b.received == []

    def test_heal_restores_delivery(self):
        scheduler, network, a, b = _make_pair()
        network.set_partition([[0], [1]])
        network.heal_partition()
        network.send(0, 1, "ok")
        scheduler.run_until(1.0)
        assert b.received == [(0, "ok")]

    def test_same_group_unaffected(self):
        scheduler, network, a, b = _make_pair()
        network.set_partition([[0, 1]])
        network.send(0, 1, "ok")
        scheduler.run_until(1.0)
        assert b.received == [(0, "ok")]

    def test_partition_formed_mid_flight_cuts_message(self):
        scheduler, network, a, b = _make_pair(latency=FixedLatency(1.0))
        network.send(0, 1, "in-flight")
        scheduler.schedule_at(0.5, lambda: network.set_partition([[0], [1]]))
        scheduler.run_until(2.0)
        assert b.received == []

    def test_overlapping_groups_rejected(self):
        scheduler, network, a, b = _make_pair()
        with pytest.raises(InvalidConfigurationError):
            network.set_partition([[0, 1], [1]])


class TestLatencyModels:
    def test_fixed(self):
        assert FixedLatency(0.01).sample(np.random.default_rng(0)) == 0.01

    def test_uniform_within_bounds(self):
        model = UniformLatency(0.01, 0.02)
        rng = np.random.default_rng(0)
        samples = [model.sample(rng) for _ in range(100)]
        assert all(0.01 <= s <= 0.02 for s in samples)

    def test_lognormal_positive_and_heavy_tailed(self):
        model = LogNormalLatency(median=0.01, sigma=1.0)
        rng = np.random.default_rng(0)
        samples = np.array([model.sample(rng) for _ in range(5000)])
        assert (samples > 0).all()
        assert np.median(samples) == pytest.approx(0.01, rel=0.1)
        assert samples.max() > 5 * np.median(samples)

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            FixedLatency(-0.1)
        with pytest.raises(InvalidConfigurationError):
            UniformLatency(0.2, 0.1)
        with pytest.raises(InvalidConfigurationError):
            LogNormalLatency(0.0)


class TestLifecycle:
    def test_double_attach_rejected(self):
        scheduler = EventScheduler()
        network = Network(scheduler)
        rng = np.random.default_rng(0)
        node = IdleProcess(0, scheduler, network, rng)
        network.attach(node)
        with pytest.raises(SimulationError):
            network.attach(node)

    def test_recovered_node_receives_again(self):
        scheduler, network, a, b = _make_pair()
        b.crash()
        network.send(0, 1, "lost")
        scheduler.run_until(0.5)
        b.recover()
        network.send(0, 1, "found")
        scheduler.run_until(1.0)
        assert b.received == [(0, "found")]
