"""Unit tests for the Poisson-binomial counting estimator."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from scipy import stats

from repro.analysis.counting import (
    aggregate_counts,
    binomial_tail,
    counting_reliability,
    joint_count_pmf,
    poisson_binomial_pmf,
)
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import Fleet, NodeModel, uniform_fleet
from repro.protocols.raft import RaftSpec


class TestPoissonBinomial:
    def test_homogeneous_matches_binomial(self):
        pmf = poisson_binomial_pmf([0.3] * 8)
        expected = stats.binom.pmf(np.arange(9), 8, 0.3)
        assert np.allclose(pmf, expected)

    def test_heterogeneous_matches_bruteforce(self):
        probs = [0.1, 0.35, 0.6, 0.05]
        pmf = poisson_binomial_pmf(probs)
        brute = np.zeros(5)
        for outcome in itertools.product([0, 1], repeat=4):
            weight = math.prod(p if x else 1 - p for p, x in zip(probs, outcome))
            brute[sum(outcome)] += weight
        assert np.allclose(pmf, brute)

    def test_sums_to_one(self):
        pmf = poisson_binomial_pmf([0.01, 0.5, 0.99, 0.3])
        assert pmf.sum() == pytest.approx(1.0)

    def test_degenerate_probabilities(self):
        pmf = poisson_binomial_pmf([0.0, 1.0])
        assert pmf[1] == pytest.approx(1.0)

    def test_empty(self):
        pmf = poisson_binomial_pmf([])
        assert pmf.tolist() == [1.0]

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidConfigurationError):
            poisson_binomial_pmf([1.5])


class TestJointCountPMF:
    def test_sums_to_one(self, byz_mixture_fleet):
        pmf = joint_count_pmf(byz_mixture_fleet)
        assert pmf.sum() == pytest.approx(1.0)

    def test_marginal_crash_distribution(self):
        fleet = Fleet((NodeModel(0.2, 0.0), NodeModel(0.4, 0.0)))
        pmf = joint_count_pmf(fleet)
        crash_marginal = pmf.sum(axis=1)
        expected = poisson_binomial_pmf([0.2, 0.4])
        assert np.allclose(crash_marginal, expected)

    def test_marginal_byzantine_distribution(self):
        fleet = Fleet((NodeModel(0.0, 0.1), NodeModel(0.0, 0.3)))
        pmf = joint_count_pmf(fleet)
        byz_marginal = pmf.sum(axis=0)
        expected = poisson_binomial_pmf([0.1, 0.3])
        assert np.allclose(byz_marginal, expected)

    def test_matches_bruteforce_trinomial(self, byz_mixture_fleet):
        pmf = joint_count_pmf(byz_mixture_fleet)
        brute = np.zeros_like(pmf)
        outcomes = [
            (node.p_correct, node.p_crash, node.p_byzantine)
            for node in byz_mixture_fleet
        ]
        for assignment in itertools.product([0, 1, 2], repeat=byz_mixture_fleet.n):
            weight = math.prod(outcomes[i][a] for i, a in enumerate(assignment))
            crash = sum(1 for a in assignment if a == 1)
            byz = sum(1 for a in assignment if a == 2)
            brute[crash, byz] += weight
        assert np.allclose(pmf, brute)

    def test_impossible_region_is_zero(self):
        fleet = uniform_fleet(3, 0.5)
        pmf = joint_count_pmf(fleet)
        assert pmf[3, 1] == 0.0  # 3 crashes + 1 byz > n


class TestAggregation:
    def test_aggregate_counts_with_tail_predicate(self):
        fleet = uniform_fleet(10, 0.2)
        p = aggregate_counts(fleet, lambda crash, byz: crash <= 3)
        assert p == pytest.approx(binomial_tail(10, 0.2, 3))

    def test_counting_reliability_raft_n3(self, small_cft_fleet):
        result = counting_reliability(RaftSpec(3), small_cft_fleet)
        assert result.safe.value == pytest.approx(1.0)
        # P(at most 1 of 3 fails at 1%)
        expected = binomial_tail(3, 0.01, 1)
        assert result.live.value == pytest.approx(expected)
        assert result.safe_and_live.value == pytest.approx(expected)

    def test_size_mismatch_rejected(self, small_cft_fleet):
        with pytest.raises(InvalidConfigurationError):
            counting_reliability(RaftSpec(5), small_cft_fleet)

    def test_asymmetric_spec_rejected(self, small_cft_fleet):
        from repro.protocols.reliability_aware import ReliabilityAwareRaftSpec

        spec = ReliabilityAwareRaftSpec(3, pinned=[0])
        with pytest.raises(InvalidConfigurationError):
            counting_reliability(spec, small_cft_fleet)

    def test_scales_to_large_heterogeneous_fleet(self):
        fleet = Fleet(tuple(NodeModel(0.001 * (i % 10 + 1)) for i in range(150)))
        result = counting_reliability(RaftSpec(150), fleet)
        assert 0.99 < result.safe_and_live.value <= 1.0
