"""Tests for the contract checker itself (repro.contracts).

Every rule family is proven both to fire on a minimal bad snippet and to
stay quiet on the corresponding good snippet — a lint rule that cannot
demonstrate both is either dead or noisy.  Suppression comments, path
allowlists, baseline semantics and the JSON report schema are covered
here too; the self-lint of ``src/repro`` lives in test_contracts_self.py.
"""

import json
import textwrap

import pytest

from repro.contracts import (
    DEFAULT_CONFIG,
    KeyBinding,
    LintConfig,
    LintResult,
    lint_sources,
    load_baseline,
    registered_rules,
    render_json,
    render_text,
    save_baseline,
    split_against_baseline,
)
from repro.contracts.core import Finding

pytestmark = pytest.mark.lint


def run(source, *, path="app/mod.py", rules=None, config=None):
    """Lint one dedented in-memory module and return its findings."""
    findings = lint_sources(
        {path: textwrap.dedent(source)},
        config=DEFAULT_CONFIG if config is None else config,
        rules=rules,
    )
    return findings


def rule_ids(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------------
class TestRngDiscipline:
    def test_fires_on_ambient_default_rng(self):
        findings = run(
            """
            import numpy as np

            def sample(trials):
                rng = np.random.default_rng()
                return rng.random(trials)
            """,
            rules=["rng-discipline"],
        )
        assert rule_ids(findings) == ["rng-discipline"]
        assert "numpy.random.default_rng" in findings[0].message

    def test_fires_on_from_import_and_stdlib_random(self):
        findings = run(
            """
            import random
            from numpy.random import SeedSequence

            def jitter():
                seq = SeedSequence()
                return random.random() + random.randint(0, 3)
            """,
            rules=["rng-discipline"],
        )
        assert rule_ids(findings) == ["rng-discipline"] * 3

    def test_quiet_when_stream_is_threaded(self):
        findings = run(
            """
            def sample(trials, *, rng):
                return rng.random(trials)

            def spawn(seed, rng_factory):
                return rng_factory(seed)
            """,
            rules=["rng-discipline"],
        )
        assert findings == []

    def test_boundary_module_is_allowlisted(self):
        source = """
        import numpy as np

        def as_generator(seed):
            return np.random.default_rng(seed)
        """
        inside = run(source, path="repro/_rng.py", rules=["rng-discipline"])
        outside = run(source, path="repro/analysis/spec.py", rules=["rng-discipline"])
        assert inside == []
        assert rule_ids(outside) == ["rng-discipline"]


# ---------------------------------------------------------------------------
# wall-clock
# ---------------------------------------------------------------------------
class TestWallClock:
    def test_fires_on_clock_and_entropy_reads(self):
        findings = run(
            """
            import os
            import time
            import uuid
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now(), uuid.uuid4(), os.urandom(8)
            """,
            rules=["wall-clock"],
        )
        assert rule_ids(findings) == ["wall-clock"] * 4

    def test_quiet_on_sleep_and_threaded_time(self):
        findings = run(
            """
            import time

            def audit(trace, now):
                time.sleep(0.01)
                return (now, len(trace))
            """,
            rules=["wall-clock"],
        )
        assert findings == []

    def test_supervision_boundary_is_allowlisted(self):
        source = """
        import time

        def deadline(budget):
            return time.monotonic() + budget
        """
        inside = run(source, path="repro/engine/runtime.py", rules=["wall-clock"])
        outside = run(source, path="repro/sim/cluster.py", rules=["wall-clock"])
        assert inside == []
        assert rule_ids(outside) == ["wall-clock"]


# ---------------------------------------------------------------------------
# iter-order
# ---------------------------------------------------------------------------
class TestIterationOrder:
    def test_fires_on_set_iteration(self):
        findings = run(
            """
            def labels(nodes):
                out = []
                for node in {n.strip() for n in nodes}:
                    out.append(node)
                return out
            """,
            rules=["iter-order"],
        )
        assert rule_ids(findings) == ["iter-order"]

    def test_fires_on_dict_view_in_codec_method(self):
        findings = run(
            """
            class Plan:
                def to_dict(self):
                    return [self.data[k] for k in self.data.keys()]
            """,
            rules=["iter-order"],
        )
        assert rule_ids(findings) == ["iter-order"]
        assert "codec" in findings[0].message

    def test_dict_view_quiet_outside_codec_methods(self):
        findings = run(
            """
            class Plan:
                def describe(self):
                    return [self.data[k] for k in self.data.keys()]
            """,
            rules=["iter-order"],
        )
        assert findings == []

    def test_sorted_and_order_neutral_consumers_are_quiet(self):
        findings = run(
            """
            def cache_key(self):
                total = sum(v for v in self.weights)
                names = tuple(sorted({n for n in self.members}))
                return (total, names, sorted(self.data.items()))
            """,
            rules=["iter-order"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# pool-safety
# ---------------------------------------------------------------------------
class TestPoolSafety:
    def test_fires_on_lambda_worker(self):
        findings = run(
            """
            def campaign(payloads):
                return run_sharded(lambda p: p * 2, payloads, jobs=4)
            """,
            rules=["pool-safety"],
        )
        assert rule_ids(findings) == ["pool-safety"]
        assert "lambda" in findings[0].message

    def test_fires_on_nested_function_worker(self):
        findings = run(
            """
            def campaign(spec, payloads):
                def worker(payload):
                    return spec, payload
                return run_supervised(worker, payloads)
            """,
            rules=["pool-safety"],
        )
        assert rule_ids(findings) == ["pool-safety"]
        assert "worker" in findings[0].message

    def test_fires_on_submit_lambda(self):
        findings = run(
            """
            def fan_out(executor, items):
                return [executor.submit(lambda: item) for item in items]
            """,
            rules=["pool-safety"],
        )
        assert rule_ids(findings) == ["pool-safety"]

    def test_quiet_on_module_level_worker(self):
        findings = run(
            """
            def _chunk_worker(payload):
                return payload * 2

            def campaign(payloads):
                return run_sharded(_chunk_worker, payloads, jobs=4)
            """,
            rules=["pool-safety"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# cache-key-coverage
# ---------------------------------------------------------------------------
def coverage_config(**kwargs):
    return LintConfig(cache_key_modules=("*keyed.py",), **kwargs)


class TestCacheKeyCoverage:
    def test_fires_on_missing_field(self):
        findings = run(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Plan:
                events: tuple
                adversary: str = "none"

                def cache_key(self):
                    return (self.events,)
            """,
            path="app/keyed.py",
            rules=["cache-key-coverage"],
            config=coverage_config(),
        )
        assert rule_ids(findings) == ["cache-key-coverage"]
        assert "adversary" in findings[0].message

    def test_quiet_on_full_coverage_and_helper_chasing(self):
        findings = run(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Plan:
                events: tuple
                adversary: str = "none"

                def fault_key(self):
                    return (self.events,)

                def cache_key(self):
                    return self.fault_key() + (self.adversary,)

                def to_dict(self):
                    return {"events": self.events, "adversary": self.adversary}
            """,
            path="app/keyed.py",
            rules=["cache-key-coverage"],
            config=coverage_config(),
        )
        assert findings == []

    def test_fields_call_counts_as_full_coverage(self):
        findings = run(
            """
            from dataclasses import dataclass, fields

            @dataclass(frozen=True)
            class Plan:
                events: tuple
                adversary: str = "none"

                def to_dict(self):
                    return {f.name: getattr(self, f.name) for f in fields(self)}
            """,
            path="app/keyed.py",
            rules=["cache-key-coverage"],
            config=coverage_config(),
        )
        assert findings == []

    def test_inherited_fields_are_required(self):
        findings = run(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Base:
                scenario: str = ""

            @dataclass(frozen=True)
            class Child(Base):
                extra: int = 0

                def cache_key(self):
                    return (self.extra,)
            """,
            path="app/keyed.py",
            rules=["cache-key-coverage"],
            config=coverage_config(),
        )
        assert rule_ids(findings) == ["cache-key-coverage"]
        assert "scenario" in findings[0].message

    def test_exempt_field_is_quiet(self):
        findings = run(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Plan:
                events: tuple
                label: str = ""

                def cache_key(self):
                    return (self.events,)
            """,
            path="app/keyed.py",
            rules=["cache-key-coverage"],
            config=coverage_config(
                field_exemptions={"Plan.label": "display-only provenance"}
            ),
        )
        assert findings == []

    def test_key_binding_catches_out_of_class_drift(self):
        sources = {
            "app/keyed.py": textwrap.dedent(
                """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Job:
                    replicas: int = 1
                    duration: float = 1.0
                """
            ),
            "app/backend.py": textwrap.dedent(
                """
                def _job_cache_key(job):
                    return ("job", job.replicas)
                """
            ),
        }
        config = coverage_config(
            key_bindings=(
                KeyBinding(
                    function="_job_cache_key",
                    class_name="Job",
                    path_pattern="*backend.py",
                ),
            )
        )
        findings = lint_sources(sources, config=config, rules=["cache-key-coverage"])
        assert rule_ids(findings) == ["cache-key-coverage"]
        assert "duration" in findings[0].message
        assert findings[0].path == "app/backend.py"

        sources["app/backend.py"] = textwrap.dedent(
            """
            def _job_cache_key(job):
                return ("job", job.replicas, job.duration)
            """
        )
        assert lint_sources(sources, config=config, rules=["cache-key-coverage"]) == []


# ---------------------------------------------------------------------------
# except-hygiene
# ---------------------------------------------------------------------------
class TestExceptHygiene:
    def test_fires_on_bare_except(self):
        findings = run(
            """
            def safe(worker, payload):
                try:
                    return worker(payload)
                except:
                    return None
            """,
            rules=["except-hygiene"],
        )
        assert rule_ids(findings) == ["except-hygiene"]
        assert "bare" in findings[0].message

    def test_fires_on_dropped_broad_exception(self):
        findings = run(
            """
            def safe(worker, payload):
                try:
                    return worker(payload)
                except Exception:
                    return None
            """,
            rules=["except-hygiene"],
        )
        assert rule_ids(findings) == ["except-hygiene"]

    def test_quiet_when_error_is_attributed_or_reraised(self):
        findings = run(
            """
            def attributed(worker, payload, report):
                try:
                    return worker(payload)
                except Exception as error:
                    report.attribute(payload, error)
                    return None

            def reraised(worker, payload):
                try:
                    return worker(payload)
                except (Exception,):
                    raise RuntimeError("shard failed")
            """,
            rules=["except-hygiene"],
        )
        assert findings == []

    def test_narrow_handlers_are_quiet(self):
        findings = run(
            """
            def parse(text):
                try:
                    return int(text)
                except ValueError:
                    return None
            """,
            rules=["except-hygiene"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# registry-drift
# ---------------------------------------------------------------------------
_KIND_SOURCE = """
from dataclasses import dataclass

@register_query_kind
@dataclass(frozen=True)
class LatencyQuery:
    kind = "latency"
"""

_BACKEND_SOURCE = """
@register_backend("{kind}")
def backend(engine, queries, policy):
    return []
"""


class TestRegistryDrift:
    def test_fires_on_kind_without_backend(self):
        findings = lint_sources(
            {
                "app/query.py": textwrap.dedent(_KIND_SOURCE),
                "app/backends.py": textwrap.dedent(_BACKEND_SOURCE.format(kind="other")),
            },
            rules=["registry-drift"],
        )
        messages = sorted(f.message for f in findings)
        assert rule_ids(findings) == ["registry-drift"] * 2
        assert any("'latency' has no register_backend" in m for m in messages)
        assert any("kind 'other'" in m for m in messages)

    def test_quiet_when_registries_agree(self):
        findings = lint_sources(
            {
                "app/query.py": textwrap.dedent(_KIND_SOURCE),
                "app/backends.py": textwrap.dedent(
                    _BACKEND_SOURCE.format(kind="latency")
                ),
            },
            rules=["registry-drift"],
        )
        assert findings == []

    def test_quiet_when_only_one_registry_in_scope(self):
        # Single-file lint of just the query module: no cross-check possible.
        findings = lint_sources(
            {"app/query.py": textwrap.dedent(_KIND_SOURCE)},
            rules=["registry-drift"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Suppressions, parse errors, config scoping
# ---------------------------------------------------------------------------
class TestSuppressions:
    SOURCE = """
    import time

    def stamp():{same_line}
        return time.time(){marker}
    """

    def test_marker_on_finding_line(self):
        findings = run(
            self.SOURCE.format(
                same_line="", marker="  # repro: allow[wall-clock] -- test"
            ),
            rules=["wall-clock"],
        )
        assert findings == []

    def test_marker_on_line_above(self):
        findings = run(
            """
            import time

            def stamp():
                # repro: allow[wall-clock] -- metrology only
                return time.time()
            """,
            rules=["wall-clock"],
        )
        assert findings == []

    def test_wildcard_marker_allows_all_rules(self):
        findings = run(
            """
            import time

            def stamp():
                return time.time()  # repro: allow[*]
            """,
            rules=["wall-clock"],
        )
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self):
        findings = run(
            self.SOURCE.format(
                same_line="", marker="  # repro: allow[rng-discipline]"
            ),
            rules=["wall-clock"],
        )
        assert rule_ids(findings) == ["wall-clock"]

    def test_marker_two_lines_above_is_out_of_range(self):
        findings = run(
            """
            import time

            def stamp():
                # repro: allow[wall-clock] -- too far away
                x = 1
                return time.time()
            """,
            rules=["wall-clock"],
        )
        assert rule_ids(findings) == ["wall-clock"]


def test_syntax_error_becomes_parse_error_finding():
    findings = run("def broken(:\n    pass\n")
    assert rule_ids(findings) == ["parse-error"]
    assert "does not parse" in findings[0].message


def test_excluded_paths_are_skipped():
    config = LintConfig(exclude=("*/generated/*",))
    findings = lint_sources(
        {"app/generated/mod.py": "import time\nstamp = time.time()\n"},
        config=config,
        rules=["wall-clock"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# Baseline semantics
# ---------------------------------------------------------------------------
def finding(path="a.py", line=1, rule="wall-clock", message="m"):
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


class TestBaseline:
    def test_split_new_baselined_and_stale(self):
        current = [finding(line=3, message="m1"), finding(line=9, message="m2")]
        baseline = [("a.py", "wall-clock", "m1"), ("b.py", "wall-clock", "gone")]
        new, baselined, stale = split_against_baseline(current, baseline)
        assert [f.message for f in new] == ["m2"]
        assert [f.message for f in baselined] == ["m1"]
        assert stale == [("b.py", "wall-clock", "gone")]

    def test_matching_is_line_independent(self):
        new, baselined, _ = split_against_baseline(
            [finding(line=999, message="m1")], [("a.py", "wall-clock", "m1")]
        )
        assert new == [] and len(baselined) == 1

    def test_duplicate_findings_need_duplicate_entries(self):
        # One baseline row buys exactly one copy of the violation: a second
        # identical site is still a new finding.
        current = [finding(line=1, message="dup"), finding(line=2, message="dup")]
        new, baselined, _ = split_against_baseline(
            current, [("a.py", "wall-clock", "dup")]
        )
        assert len(baselined) == 1 and len(new) == 1

    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([finding(message="kept")], path)
        assert load_baseline(path) == [("a.py", "wall-clock", "kept")]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99}')
        with pytest.raises(Exception):
            load_baseline(path)


# ---------------------------------------------------------------------------
# Report schema and explain text
# ---------------------------------------------------------------------------
class TestReports:
    def result(self):
        new = finding(message="fresh")
        old = finding(line=5, message="known")
        return LintResult(
            findings=(new, old),
            new=(new,),
            baselined=(old,),
            stale_baseline=(("b.py", "wall-clock", "gone"),),
            files_checked=2,
        )

    def test_json_schema_is_stable(self):
        data = json.loads(render_json(self.result()))
        assert sorted(data) == [
            "counts",
            "files_checked",
            "findings",
            "ok",
            "stale_baseline",
            "version",
        ]
        assert data["version"] == 1
        assert data["ok"] is False
        assert data["counts"] == {"total": 2, "new": 1, "baselined": 1}
        row = data["findings"][0]
        assert sorted(row) == ["baselined", "col", "line", "message", "path", "rule"]
        flags = {r["message"]: r["baselined"] for r in data["findings"]}
        assert flags == {"fresh": False, "known": True}

    def test_text_report_mentions_new_findings_and_stale_rows(self):
        text = render_text(self.result())
        assert "fresh" in text
        assert "FAIL" in text
        assert "stale" in text.lower()
        ok_text = render_text(
            LintResult(findings=(), new=(), baselined=(), files_checked=3)
        )
        assert "ok" in ok_text

    def test_every_rule_has_a_complete_explain(self):
        rules = registered_rules()
        assert set(rules) == {
            "rng-discipline",
            "wall-clock",
            "iter-order",
            "pool-safety",
            "cache-key-coverage",
            "except-hygiene",
            "registry-drift",
            "lock-guard",
            "lock-order",
            "async-hygiene",
            "journal-durability",
        }
        for rule_id, rule in rules.items():
            text = rule.explain()
            assert rule_id in text
            assert "Bad:" in text and "Good:" in text
            assert "repro: allow[" in text
