"""Unit tests for the PBFT spec (Theorem 3.1, erratum-corrected)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError
from repro.protocols.pbft import PBFTSpec, pbft_fault_threshold, pbft_quorum, table1_spec


class TestDefaults:
    @pytest.mark.parametrize("n,f", [(4, 1), (5, 1), (6, 1), (7, 2), (8, 2), (10, 3)])
    def test_fault_threshold(self, n, f):
        assert pbft_fault_threshold(n) == f

    @pytest.mark.parametrize("n,quorum", [(4, 3), (5, 4), (7, 5), (8, 6)])
    def test_quorum_matches_table1_column(self, n, quorum):
        """The paper's Table 1 quorum sizes."""
        assert pbft_quorum(n) == quorum

    @pytest.mark.parametrize("n,trigger", [(4, 2), (5, 2), (7, 3), (8, 3)])
    def test_trigger_matches_table1_column(self, n, trigger):
        assert PBFTSpec(n).q_vc_t == trigger

    def test_classic_3f_plus_1(self):
        # At n = 3f+1 the quorum is the familiar 2f+1.
        for f in (1, 2, 3, 5):
            assert pbft_quorum(3 * f + 1) == 2 * f + 1


class TestTheorem31Safety:
    def test_n4_tolerates_one_byzantine(self):
        spec = PBFTSpec(4)
        assert spec.is_safe_counts(0, 1)
        assert not spec.is_safe_counts(0, 2)

    def test_n5_tolerates_two_byzantine(self):
        # Larger quorums at n=5 buy an extra unit of *safety* tolerance.
        spec = PBFTSpec(5)
        assert spec.is_safe_counts(0, 2)
        assert not spec.is_safe_counts(0, 3)

    def test_crashes_alone_never_violate_safety(self):
        spec = PBFTSpec(7)
        for crashed in range(8):
            assert spec.is_safe_counts(crashed, 0)

    def test_both_conditions_checked(self):
        # Shrink q_eq only: non-equivocation becomes the binding constraint.
        spec = PBFTSpec(7, q_eq=4)  # 2*4-7 = 1 -> no Byzantine tolerated
        assert not spec.is_safe_counts(0, 1)
        assert spec.is_safe_counts(0, 0)


class TestTheorem31Liveness:
    def test_quorum_formability(self):
        spec = PBFTSpec(4)
        assert spec.is_live_counts(1, 0)
        assert not spec.is_live_counts(2, 0)

    def test_byzantine_view_change_completion_bound(self):
        # N=4: q_vc - q_vc_t = 1 -> one Byzantine tolerable for liveness.
        spec = PBFTSpec(4)
        assert spec.is_live_counts(0, 1)
        assert not spec.is_live_counts(0, 2)

    def test_spurious_view_change_bound(self):
        # Force the q_vc_t condition to bind: huge trigger quorum.
        spec = PBFTSpec(7, q_vc_t=1)
        assert not spec.is_live_counts(0, 1)  # byz < q_vc_t == 1 fails

    def test_erratum_reading_is_nonnegative(self):
        # With the printed (uncorrected) reading liveness would always be
        # False; the corrected bound must admit the all-correct config.
        for n in (4, 5, 7, 8):
            assert PBFTSpec(n).is_live_counts(0, 0)


class TestHelpers:
    def test_table1_spec_valid_rows(self):
        for n in (4, 5, 7, 8):
            assert table1_spec(n).n == n

    def test_table1_spec_invalid_row(self):
        with pytest.raises(InvalidConfigurationError):
            table1_spec(6)

    def test_quorum_bounds_validated(self):
        with pytest.raises(InvalidConfigurationError):
            PBFTSpec(4, q_eq=5)
        with pytest.raises(InvalidConfigurationError):
            PBFTSpec(4, q_vc_t=0)

    def test_repr_mentions_quorums(self):
        assert "q_eq=3" in repr(PBFTSpec(4))
