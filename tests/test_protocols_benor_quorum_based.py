"""Unit tests for Ben-Or specs and the generic quorum-system spec."""

from __future__ import annotations

import pytest

from repro.analysis.config import FailureConfig, FaultKind
from repro.analysis.exact import exact_reliability
from repro.analysis.counting import counting_reliability
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import uniform_fleet
from repro.protocols.benor import BenOrSpec, ByzantineBenOrSpec
from repro.protocols.quorum_based import QuorumSystemSpec
from repro.protocols.raft import RaftSpec
from repro.quorums.flexible import GridQuorums
from repro.quorums.majority import MajorityQuorums, ThresholdQuorums


class TestBenOr:
    def test_safe_under_any_crashes(self):
        spec = BenOrSpec(5)
        for crashed in range(6):
            assert spec.is_safe_counts(crashed, 0)

    def test_unsafe_with_byzantine(self):
        assert not BenOrSpec(5).is_safe_counts(0, 1)

    def test_live_with_correct_majority(self):
        spec = BenOrSpec(5)
        assert spec.is_live_counts(2, 0)
        assert not spec.is_live_counts(3, 0)

    def test_matches_raft_liveness_probability(self):
        """Ben-Or and majority-Raft have identical liveness envelopes."""
        fleet = uniform_fleet(5, 0.05)
        benor = counting_reliability(BenOrSpec(5), fleet)
        raft = counting_reliability(RaftSpec(5), fleet)
        assert benor.live.value == pytest.approx(raft.live.value)


class TestByzantineBenOr:
    def test_safety_threshold_n_over_5(self):
        spec = ByzantineBenOrSpec(11)
        assert spec.is_safe_counts(0, 2)
        assert not spec.is_safe_counts(0, 3)  # 5*3 >= 11... 15 >= 11

    def test_liveness_requires_report_threshold(self):
        spec = ByzantineBenOrSpec(11)
        assert spec.is_live_counts(0, 0)
        assert not spec.is_live_counts(6, 0)


class TestQuorumSystemSpec:
    def test_universe_mismatch(self):
        with pytest.raises(InvalidConfigurationError):
            QuorumSystemSpec(MajorityQuorums(3), MajorityQuorums(5))

    def test_majority_systems_match_raft(self):
        """The generic spec with majority systems must equal Thm 3.2."""
        n = 5
        spec = QuorumSystemSpec(MajorityQuorums(n), MajorityQuorums(n), name="maj")
        raft = RaftSpec(n)
        fleet = uniform_fleet(n, 0.1)
        generic = exact_reliability(spec, fleet)
        theorem = counting_reliability(raft, fleet)
        assert generic.safe.value == pytest.approx(theorem.safe.value)
        assert generic.live.value == pytest.approx(theorem.live.value)

    def test_non_intersecting_thresholds_unsafe(self):
        n = 4
        spec = QuorumSystemSpec(ThresholdQuorums(n, 2), ThresholdQuorums(n, 2))
        config = FailureConfig.all_correct(n)
        assert not spec.is_safe(config)

    def test_byzantine_always_unsafe(self):
        spec = QuorumSystemSpec(MajorityQuorums(3), MajorityQuorums(3))
        config = FailureConfig.from_failed_indices(3, [0], kind=FaultKind.BYZANTINE)
        assert not spec.is_safe(config)

    def test_grid_quorums_analysable(self):
        grid = GridQuorums(2, 2)
        spec = QuorumSystemSpec(grid, grid, name="grid")
        # All correct: grid quorums intersect pairwise (row x column).
        assert spec.is_safe(FailureConfig.all_correct(4))
        assert spec.is_live(FailureConfig.all_correct(4))
        # Any single failure kills every (row + column) pair through that
        # node's row or column eventually: check liveness degradation.
        one_down = FailureConfig.from_failed_indices(4, [0])
        assert spec.is_live(one_down)  # row 1 + col 1 still correct
        two_down = FailureConfig.from_failed_indices(4, [0, 3])
        assert not spec.is_live(two_down)  # every row and column hit
