"""Unit tests for AFR / MTBF / rate conversions."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError, InvalidProbabilityError
from repro.faults.afr import (
    afr_to_hourly_rate,
    afr_to_window_probability,
    hourly_rate_to_afr,
    mtbf_hours_to_afr,
    rate_to_mtbf_hours,
    window_probability_to_afr,
)
from repro.faults.curves import HOURS_PER_YEAR


class TestRoundTrips:
    @pytest.mark.parametrize("afr", [0.001, 0.01, 0.04, 0.08, 0.5])
    def test_afr_rate_round_trip(self, afr):
        assert hourly_rate_to_afr(afr_to_hourly_rate(afr)) == pytest.approx(afr)

    @pytest.mark.parametrize("p", [0.005, 0.08, 0.3])
    def test_window_probability_round_trip(self, p):
        afr = window_probability_to_afr(p, 720.0)
        assert afr_to_window_probability(afr, 720.0) == pytest.approx(p)

    def test_afr_over_one_year_window_is_identity(self):
        assert afr_to_window_probability(0.04, HOURS_PER_YEAR) == pytest.approx(0.04)


class TestMTBF:
    def test_mtbf_inverse_of_rate(self):
        assert rate_to_mtbf_hours(1e-4) == pytest.approx(10_000.0)

    def test_mtbf_to_afr_small_rate_approximation(self):
        # For MTBF >> a year, AFR ≈ hours-per-year / MTBF.
        mtbf = 1_000_000.0
        assert mtbf_hours_to_afr(mtbf) == pytest.approx(HOURS_PER_YEAR / mtbf, rel=0.01)

    def test_mtbf_equal_to_year_gives_63_percent(self):
        assert mtbf_hours_to_afr(HOURS_PER_YEAR) == pytest.approx(0.6321, abs=1e-3)


class TestValidation:
    def test_afr_bounds(self):
        with pytest.raises(InvalidProbabilityError):
            afr_to_hourly_rate(1.0)
        with pytest.raises(InvalidProbabilityError):
            afr_to_hourly_rate(-0.1)

    def test_negative_rate(self):
        with pytest.raises(InvalidConfigurationError):
            hourly_rate_to_afr(-1e-5)

    def test_nonpositive_mtbf(self):
        with pytest.raises(InvalidConfigurationError):
            mtbf_hours_to_afr(0.0)

    def test_zero_window(self):
        assert afr_to_window_probability(0.04, 0.0) == 0.0
        with pytest.raises(InvalidConfigurationError):
            window_probability_to_afr(0.01, 0.0)


class TestMonotonicity:
    def test_rate_monotone_in_afr(self):
        rates = [afr_to_hourly_rate(a) for a in (0.01, 0.04, 0.2)]
        assert rates == sorted(rates)

    def test_window_probability_monotone_in_window(self):
        probs = [afr_to_window_probability(0.04, h) for h in (24, 720, 8766)]
        assert probs == sorted(probs)
