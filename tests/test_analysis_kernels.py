"""Equivalence tests pinning the vectorized kernels to the seed estimators.

Every kernel path is checked against a *reference implementation* — a copy
of the pre-kernel per-trial / per-count-pair loops — across the protocol
zoo (Raft, PBFT, Ben-Or, hybrid Upright, reliability-aware).  Exact
estimators must be bit-identical; seeded Monte-Carlo paths must produce
the exact tallies the historical loops produced for the same seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._rng import as_generator
from repro.analysis import analyze, analyze_batch
from repro.analysis.config import FailureConfig, FaultKind
from repro.analysis.counting import counting_reliability, joint_count_pmf
from repro.analysis.exact import enumerate_configurations, worst_configurations
from repro.analysis.horizon import reliability_over_horizon
from repro.analysis.importance import importance_sample_violation
from repro.analysis.kernels import (
    VerdictMasks,
    birnbaum_importances,
    compute_verdict_masks,
    correlated_tally,
    counting_reliability_batch,
    joint_count_pmf_batch,
    loo_weighted_products,
    monte_carlo_tally,
    predicate_tally,
    upgrade_metric_values,
    verdict_masks,
)
from repro.analysis.montecarlo import (
    monte_carlo_correlated,
    monte_carlo_reliability,
    sample_configuration,
)
from repro.analysis.predicates import monte_carlo_predicate
from repro.analysis.sensitivity import (
    best_single_upgrade,
    birnbaum_importance,
    importance_ranking,
    reliability_gradient,
)
from repro.errors import InvalidConfigurationError
from repro.faults.correlation import CommonShockModel, rollout_shock
from repro.faults.curves import ConstantHazard
from repro.faults.mixture import Fleet, NodeModel, heterogeneous_fleet, uniform_fleet
from repro.protocols.benor import BenOrSpec, ByzantineBenOrSpec
from repro.protocols.hybrid import UprightSpec
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec
from repro.protocols.reliability_aware import ReliabilityAwareRaftSpec


def _mixed_fleet(n: int) -> Fleet:
    return Fleet(
        tuple(
            NodeModel(p_crash=0.02 + 0.01 * (i % 4), p_byzantine=0.003 * (i % 3))
            for i in range(n)
        )
    )


#: (spec, fleet) pairs covering the symmetric protocol zoo.
SYMMETRIC_ZOO = [
    (RaftSpec(7), _mixed_fleet(7)),
    (RaftSpec(5), uniform_fleet(5, 0.08)),
    (PBFTSpec(7), uniform_fleet(7, 0.03, byzantine_fraction=1.0)),
    (PBFTSpec(4), _mixed_fleet(4)),
    (BenOrSpec(7), uniform_fleet(7, 0.05)),
    (ByzantineBenOrSpec(11), _mixed_fleet(11)),
    (UprightSpec(2, 1), _mixed_fleet(6)),
]

#: Symmetric spec factories for the property test.
SPEC_FACTORIES = [
    RaftSpec,
    PBFTSpec,
    BenOrSpec,
    ByzantineBenOrSpec,
    lambda n: UprightSpec.for_cluster(n, 0) if n % 2 == 1 else RaftSpec(n),
]


def _asymmetric_pair() -> tuple[ReliabilityAwareRaftSpec, Fleet]:
    spec = ReliabilityAwareRaftSpec(6, pinned=(0, 1))
    fleet = Fleet(tuple(NodeModel(0.04 + 0.01 * i, 0.004) for i in range(6)))
    return spec, fleet


# ---------------------------------------------------------------------------
# Reference implementations (copies of the pre-kernel algorithms)
# ---------------------------------------------------------------------------
def _ref_counting(spec, fleet) -> tuple[float, float, float]:
    pmf = joint_count_pmf(fleet)
    n = fleet.n
    p_safe = p_live = p_both = 0.0
    for crash in range(n + 1):
        for byz in range(n + 1 - crash):
            mass = pmf[crash, byz]
            if mass == 0.0:
                continue
            safe = spec.is_safe_counts(crash, byz)
            live = spec.is_live_counts(crash, byz)
            if safe:
                p_safe += mass
            if live:
                p_live += mass
            if safe and live:
                p_both += mass
    return min(p_safe, 1.0), min(p_live, 1.0), min(p_both, 1.0)


def _ref_trials(spec, fleet, trials: int, rng) -> tuple[int, int, int]:
    safe = live = both = 0
    for _ in range(trials):
        config = sample_configuration(fleet, rng)
        s, l = spec.is_safe(config), spec.is_live(config)
        safe += s
        live += l
        both += s and l
    return safe, live, both


def _ref_correlated(spec, model, trials: int, rng, kind) -> tuple[int, int, int]:
    # Draw through sample_many (the models' documented seeded stream) and
    # tally with a plain per-row loop, so the test pins the tally logic
    # against the same sampled vectors the kernel sees.
    safe = live = both = 0
    for failed in model.sample_many(trials, rng):
        config = FailureConfig(
            tuple(kind if f else FaultKind.CORRECT for f in failed)
        )
        s, l = spec.is_safe(config), spec.is_live(config)
        safe += s
        live += l
        both += s and l
    return safe, live, both


# ---------------------------------------------------------------------------
# Verdict masks
# ---------------------------------------------------------------------------
class TestVerdictMasks:
    @pytest.mark.parametrize("spec,fleet", SYMMETRIC_ZOO, ids=lambda v: repr(v))
    def test_masks_agree_with_count_predicates(self, spec, fleet):
        masks = verdict_masks(spec)
        for crash in range(spec.n + 1):
            for byz in range(spec.n + 1 - crash):
                assert masks.safe[crash, byz] == spec.is_safe_counts(crash, byz)
                assert masks.live[crash, byz] == spec.is_live_counts(crash, byz)
                assert masks.both[crash, byz] == (
                    spec.is_safe_counts(crash, byz) and spec.is_live_counts(crash, byz)
                )

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=13),
        factory_index=st.integers(min_value=0, max_value=len(SPEC_FACTORIES) - 1),
    )
    def test_property_masks_match_predicates_on_every_pair(self, n, factory_index):
        """Property: masks agree with is_safe_counts/is_live_counts ∀ (c, b)."""
        try:
            spec = SPEC_FACTORIES[factory_index](n)
        except InvalidConfigurationError:
            return  # factory rejects this n (e.g. Upright parity); nothing to check
        masks = compute_verdict_masks(spec)
        for crash in range(n + 1):
            for byz in range(n + 1 - crash):
                assert masks.valid[crash, byz]
                assert bool(masks.safe[crash, byz]) == bool(
                    spec.is_safe_counts(crash, byz)
                )
                assert bool(masks.live[crash, byz]) == bool(
                    spec.is_live_counts(crash, byz)
                )

    def test_masks_false_outside_valid_triangle(self):
        masks = verdict_masks(RaftSpec(5))
        for crash in range(6):
            for byz in range(6):
                if crash + byz > 5:
                    assert not masks.valid[crash, byz]
                    assert not masks.safe[crash, byz]
                    assert not masks.live[crash, byz]

    def test_masks_cached_per_spec_instance(self):
        spec = RaftSpec(9)
        assert verdict_masks(spec) is verdict_masks(spec)
        assert spec.verdict_masks() is verdict_masks(spec)

    def test_masks_rejected_for_asymmetric_spec(self):
        spec, _ = _asymmetric_pair()
        with pytest.raises(InvalidConfigurationError):
            verdict_masks(spec)

    def test_masks_are_readonly(self):
        masks = verdict_masks(RaftSpec(3))
        with pytest.raises(ValueError):
            masks.safe[0, 0] = False


# ---------------------------------------------------------------------------
# Counting: scalar and batched, bit-identical to the seed loop
# ---------------------------------------------------------------------------
class TestCountingKernel:
    @pytest.mark.parametrize("spec,fleet", SYMMETRIC_ZOO, ids=lambda v: repr(v))
    def test_counting_reliability_bit_identical(self, spec, fleet):
        result = counting_reliability(spec, fleet)
        ref_safe, ref_live, ref_both = _ref_counting(spec, fleet)
        assert result.safe.value == ref_safe
        assert result.live.value == ref_live
        assert result.safe_and_live.value == ref_both

    def test_joint_count_pmf_batch_bit_identical(self):
        fleets = [fleet for _, fleet in SYMMETRIC_ZOO if fleet.n == 7]
        crash = np.array([f.crash_probabilities for f in fleets])
        byz = np.array([f.byzantine_probabilities for f in fleets])
        batched = joint_count_pmf_batch(crash, byz)
        for fleet, pmf in zip(fleets, batched):
            assert np.array_equal(pmf, joint_count_pmf(fleet))

    def test_counting_batch_bit_identical_to_scalar(self):
        spec = RaftSpec(7)
        fleets = [
            _mixed_fleet(7),
            uniform_fleet(7, 0.02),
            uniform_fleet(7, 0.3, byzantine_fraction=0.5),
        ]
        for single, batched in zip(
            [counting_reliability(spec, f) for f in fleets],
            counting_reliability_batch(spec, fleets),
        ):
            assert batched.safe.value == single.safe.value
            assert batched.live.value == single.live.value
            assert batched.safe_and_live.value == single.safe_and_live.value

    def test_analyze_batch_matches_analyze(self):
        spec = PBFTSpec(7)
        fleets = [uniform_fleet(7, p, byzantine_fraction=1.0) for p in (0.01, 0.05, 0.1)]
        batch = analyze_batch(spec, fleets)
        for fleet, batched in zip(fleets, batch):
            assert batched.safe_and_live.value == analyze(spec, fleet).safe_and_live.value

    def test_analyze_batch_asymmetric_falls_back(self):
        spec, fleet = _asymmetric_pair()
        batch = analyze_batch(spec, [fleet])
        assert batch[0].safe_and_live.value == analyze(spec, fleet).safe_and_live.value

    def test_analyze_batch_empty(self):
        assert analyze_batch(RaftSpec(3), []) == []

    def test_batch_rejects_mismatched_sizes(self):
        with pytest.raises(InvalidConfigurationError):
            counting_reliability_batch(
                RaftSpec(5), [uniform_fleet(5, 0.1), uniform_fleet(3, 0.1)]
            )

    def test_horizon_sweep_bit_identical_to_per_window(self):
        curves = [ConstantHazard(1e-4 * (i + 1)) for i in range(5)]
        points = reliability_over_horizon(
            RaftSpec, curves, window_hours=24.0, n_windows=6
        )
        from repro.analysis.horizon import fleet_for_window

        spec = RaftSpec(5)
        for point in points:
            fleet = fleet_for_window(curves, point.start_hours, 24.0)
            assert point.safe_and_live == counting_reliability(spec, fleet).safe_and_live.value


# ---------------------------------------------------------------------------
# Monte-Carlo: seeded tallies identical to the historical per-trial loops
# ---------------------------------------------------------------------------
class TestMonteCarloKernel:
    @pytest.mark.parametrize("spec,fleet", SYMMETRIC_ZOO[:4], ids=lambda v: repr(v))
    def test_symmetric_tally_matches_reference_loop(self, spec, fleet):
        ref = _ref_trials(spec, fleet, 4_000, as_generator(11))
        tally = monte_carlo_tally(spec, fleet, 4_000, as_generator(11))
        assert ref == (tally.safe, tally.live, tally.both)

    def test_asymmetric_tally_matches_reference_loop(self):
        spec, fleet = _asymmetric_pair()
        ref = _ref_trials(spec, fleet, 4_000, as_generator(23))
        tally = monte_carlo_tally(spec, fleet, 4_000, as_generator(23))
        assert ref == (tally.safe, tally.live, tally.both)

    def test_monte_carlo_reliability_seeded_values_pinned(self):
        """End-to-end: same seed, same estimates, across chunk boundaries."""
        spec, fleet = RaftSpec(25), uniform_fleet(25, 0.05)
        a = monte_carlo_reliability(spec, fleet, trials=50_000, seed=5)
        b = monte_carlo_reliability(spec, fleet, trials=50_000, seed=5)
        assert a.safe_and_live.value == b.safe_and_live.value
        rng = as_generator(5)
        ref = _ref_trials(spec, fleet, 50_000, rng)
        assert a.safe_and_live.value == ref[2] / 50_000

    def test_correlated_tally_matches_reference_loop(self):
        fleet = uniform_fleet(5, 0.05)
        spec = RaftSpec(5)
        model = CommonShockModel(fleet, (rollout_shock(fleet, 0.02),))
        ref = _ref_correlated(spec, model, 3_000, as_generator(7), FaultKind.CRASH)
        tally = correlated_tally(spec, model, 3_000, as_generator(7), FaultKind.CRASH)
        assert ref == (tally.safe, tally.live, tally.both)

    def test_correlated_byzantine_kind_matches_reference_loop(self):
        fleet = uniform_fleet(4, 0.1)
        spec = PBFTSpec(4)
        model = CommonShockModel(fleet, ())
        ref = _ref_correlated(spec, model, 2_000, as_generator(13), FaultKind.BYZANTINE)
        result = monte_carlo_correlated(
            spec, model, trials=2_000, seed=13, failure_kind=FaultKind.BYZANTINE
        )
        assert result.safe.value == ref[0] / 2_000
        assert result.live.value == ref[1] / 2_000

    def test_predicate_tally_matches_reference_loop(self):
        fleet = _mixed_fleet(6)
        predicate = lambda config: config.num_failed <= 1  # noqa: E731
        rng = as_generator(3)
        hits = sum(
            predicate(sample_configuration(fleet, rng)) for _ in range(3_000)
        )
        assert predicate_tally(fleet, predicate, 3_000, as_generator(3)) == hits
        estimate = monte_carlo_predicate(fleet, predicate, trials=3_000, seed=3)
        assert estimate.value == hits / 3_000

    def test_importance_sampling_matches_reference_loop(self):
        """Batched tilted sampler reproduces the per-trial loop's estimate."""
        spec, fleet = RaftSpec(9), uniform_fleet(9, 0.01)
        result = importance_sample_violation(
            spec, fleet, predicate="live", trials=20_000, seed=1
        )
        # Reference: per-trial tilted loop (seed implementation).
        import math

        p = np.array(fleet.failure_probabilities)
        tilt = np.array(result.tilt)
        lrf = np.log(np.maximum(p, 1e-300)) - np.log(tilt)
        lro = np.log1p(-p) - np.log1p(-tilt)
        rng = as_generator(1)
        weights = np.zeros(20_000)
        for t in range(20_000):
            failed = rng.random(9) < tilt
            config = FailureConfig(
                tuple(FaultKind.CRASH if f else FaultKind.CORRECT for f in failed)
            )
            if not spec.is_live(config):
                weights[t] = math.exp(float(np.where(failed, lrf, lro).sum()))
        assert result.violation.value == pytest.approx(float(weights.mean()), rel=1e-9)

    def test_importance_sampling_asymmetric_spec(self):
        spec, fleet = _asymmetric_pair()
        result = importance_sample_violation(
            spec, fleet, predicate="live", trials=5_000, seed=2
        )
        assert 0.0 < result.violation.value < 1.0


# ---------------------------------------------------------------------------
# One-pass Birnbaum / leave-one-out products
# ---------------------------------------------------------------------------
class TestOnePassImportance:
    @pytest.mark.parametrize("metric", ["safe", "live", "safe_and_live"])
    @pytest.mark.parametrize(
        "failure_kind", [FaultKind.CRASH, FaultKind.BYZANTINE], ids=["crash", "byz"]
    )
    def test_matches_per_node_conditioning(self, metric, failure_kind):
        spec, fleet = PBFTSpec(7), _mixed_fleet(7)
        one_pass = birnbaum_importances(
            spec, fleet, metric=metric, failure_kind=failure_kind
        )
        for node in range(fleet.n):
            conditioned = birnbaum_importance(
                spec, fleet, node, metric=metric, failure_kind=failure_kind
            )
            assert one_pass[node] == pytest.approx(conditioned, abs=1e-12)

    @pytest.mark.parametrize("spec,fleet", SYMMETRIC_ZOO, ids=lambda v: repr(v))
    def test_zoo_ranking_matches_per_node_scores(self, spec, fleet):
        ranking = importance_ranking(spec, fleet, metric="safe_and_live")
        assert [node for node, _ in ranking] == sorted(
            range(fleet.n),
            key=lambda u: (-dict(ranking)[u], u),
        )
        for node, score in ranking:
            assert score == pytest.approx(
                birnbaum_importance(spec, fleet, node), abs=1e-12
            )

    def test_gradient_matches_per_node_conditioning(self):
        spec, fleet = RaftSpec(7), _mixed_fleet(7)
        gradient = reliability_gradient(spec, fleet, metric="live")
        for node, value in enumerate(gradient):
            assert value == pytest.approx(
                -birnbaum_importance(spec, fleet, node, metric="live"), abs=1e-12
            )

    def test_loo_products_match_explicit_leave_one_out(self):
        fleet = _mixed_fleet(5)
        spec = RaftSpec(5)
        weight = verdict_masks(spec).both.astype(float)
        crash = np.array(fleet.crash_probabilities)
        byz = np.array(fleet.byzantine_probabilities)
        products = loo_weighted_products(crash, byz, (weight,))[0]
        for u in range(5):
            others = Fleet(tuple(fleet[i] for i in range(5) if i != u))
            loo_pmf = joint_count_pmf(others)  # (5, 5) over the 4 remaining nodes
            expected = float((loo_pmf * weight[:5, :5]).sum())
            assert products[u] == pytest.approx(expected, abs=1e-14)

    def test_upgrade_values_match_explicit_replacement(self):
        spec, fleet = RaftSpec(7), _mixed_fleet(7)
        replacement = NodeModel(0.001, 0.0005)
        values = upgrade_metric_values(
            spec, fleet, replacement.p_crash, replacement.p_byzantine
        )
        for node in range(fleet.n):
            swapped = counting_reliability(spec, fleet.replace(node, replacement))
            assert values[node] == pytest.approx(swapped.safe_and_live.value, abs=1e-12)

    def test_best_single_upgrade_matches_explicit_scan(self):
        spec, fleet = RaftSpec(7), _mixed_fleet(7)
        replacement = NodeModel(0.001)
        option = best_single_upgrade(spec, fleet, replacement, metric="live")
        assert option is not None
        explicit_gains = {
            node: counting_reliability(spec, fleet.replace(node, replacement)).live.value
            - counting_reliability(spec, fleet).live.value
            for node in range(fleet.n)
            if replacement.p_fail < fleet[node].p_fail
        }
        best_node = max(explicit_gains, key=lambda u: (explicit_gains[u], -u))
        assert option.node == best_node
        assert option.gain == pytest.approx(explicit_gains[best_node], abs=1e-12)


# ---------------------------------------------------------------------------
# Bounded worst-configuration selection
# ---------------------------------------------------------------------------
class TestWorstConfigurations:
    def test_matches_full_sort(self):
        spec, fleet = RaftSpec(5), _mixed_fleet(5)
        top = worst_configurations(spec, fleet, predicate="live", limit=5)
        reference = [
            (config, probability)
            for config, probability in enumerate_configurations(fleet)
            if probability > 0.0 and not spec.is_live(config)
        ]
        reference.sort(key=lambda pair: pair[1], reverse=True)
        assert top == reference[:5]

    def test_zero_limit(self):
        spec, fleet = RaftSpec(3), uniform_fleet(3, 0.2)
        assert worst_configurations(spec, fleet, limit=0) == []


# ---------------------------------------------------------------------------
# Chunk planning boundaries
# ---------------------------------------------------------------------------
class TestChunkSizes:
    """Boundary behaviour of the per-chunk draw budget around _CHUNK_DRAWS."""

    def test_partitions_trials_exactly(self):
        from repro.analysis.kernels import _chunk_sizes

        for trials, n in ((1, 1), (999, 7), (100_000, 25), (2_000_000, 3)):
            sizes = _chunk_sizes(trials, n)
            assert sum(sizes) == trials
            assert all(size > 0 for size in sizes)

    def test_trials_below_chunk_yield_single_undersized_chunk(self):
        from repro.analysis.kernels import _CHUNK_DRAWS, _chunk_sizes

        chunk = _CHUNK_DRAWS // 50
        assert _chunk_sizes(chunk - 1, 50) == [chunk - 1]
        assert _chunk_sizes(1, 50) == [1]

    def test_exact_chunk_boundary(self):
        from repro.analysis.kernels import _CHUNK_DRAWS, _chunk_sizes

        chunk = _CHUNK_DRAWS // 50
        assert _chunk_sizes(chunk, 50) == [chunk]
        assert _chunk_sizes(chunk + 1, 50) == [chunk, 1]
        assert _chunk_sizes(3 * chunk, 50) == [chunk] * 3

    def test_huge_n_caps_chunks_at_one_trial(self):
        from repro.analysis.kernels import _CHUNK_DRAWS, _chunk_sizes

        # One trial of a fleet bigger than the draw budget already exceeds
        # the budget: the split degrades to single-trial chunks instead of
        # zero-sized ones.
        assert _chunk_sizes(3, _CHUNK_DRAWS + 1) == [1, 1, 1]
        assert _chunk_sizes(1, _CHUNK_DRAWS * 2) == [1]

    def test_budget_edge_n_equal_to_chunk_draws(self):
        from repro.analysis.kernels import _CHUNK_DRAWS, _chunk_sizes

        assert _chunk_sizes(2, _CHUNK_DRAWS) == [1, 1]
        assert _chunk_sizes(2, _CHUNK_DRAWS - 1) == [1, 1]

    def test_non_positive_trials_yield_no_chunks(self):
        from repro.analysis.kernels import _chunk_sizes

        assert _chunk_sizes(0, 5) == []
        assert _chunk_sizes(-3, 5) == []

    def test_chunked_tally_equals_single_pass(self):
        # The chunk split never changes seeded tallies: a fleet large enough
        # to force several chunks gives the same counts as one big draw.
        from repro.analysis.kernels import monte_carlo_tally

        spec, fleet = RaftSpec(9), uniform_fleet(9, 0.05)
        trials = 5000
        tally = monte_carlo_tally(spec, fleet, trials, as_generator(123))
        uniforms = as_generator(123).random((trials, 9))
        crash_p = np.array(fleet.crash_probabilities)
        byz_p = np.array(fleet.byzantine_probabilities)
        failed = (uniforms < crash_p).sum(axis=1)
        byz = ((uniforms >= crash_p) & (uniforms < crash_p + byz_p)).sum(axis=1)
        safe = sum(
            1 for c, b in zip(failed, byz) if spec.is_safe_counts(int(c), int(b))
        )
        assert tally.safe == safe
