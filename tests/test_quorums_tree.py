"""Unit tests for tree quorum systems."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError
from repro.quorums.tree import TreeQuorums


class TestStructure:
    def test_sizes(self):
        assert TreeQuorums(1).n == 1
        assert TreeQuorums(2).n == 3
        assert TreeQuorums(3).n == 7

    def test_min_quorum_is_root_to_leaf_path(self):
        tree = TreeQuorums(3)
        assert tree.min_quorum_cardinality() == 3
        # {root, left child, its left leaf} is a quorum.
        assert tree.is_quorum(frozenset({0, 1, 3}))

    def test_path_must_be_connected(self):
        tree = TreeQuorums(3)
        # Root + a leaf from the *other* subtree is not a quorum.
        assert not tree.is_quorum(frozenset({0, 1, 6}))

    def test_root_failure_needs_both_subtrees(self):
        tree = TreeQuorums(3)
        # Without the root, need quorums of both children's subtrees.
        assert tree.is_quorum(frozenset({1, 3, 2, 5}))
        assert not tree.is_quorum(frozenset({1, 3}))

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            TreeQuorums(0)


class TestQuorumAxioms:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_all_pairs_intersect(self, depth):
        tree = TreeQuorums(depth)
        quorums = list(tree.minimal_quorums())
        assert quorums
        for q1 in quorums:
            for q2 in quorums:
                assert q1 & q2, (sorted(q1), sorted(q2))

    @pytest.mark.parametrize("depth", [2, 3])
    def test_minimal_quorums_are_quorums(self, depth):
        tree = TreeQuorums(depth)
        for quorum in tree.minimal_quorums():
            assert tree.is_quorum(quorum)

    def test_monotonicity(self):
        tree = TreeQuorums(3)
        quorum = next(iter(tree.minimal_quorums()))
        assert tree.is_quorum(quorum | {6})

    def test_full_set_is_quorum(self):
        tree = TreeQuorums(3)
        assert tree.is_quorum(frozenset(range(7)))

    def test_empty_set_is_not(self):
        assert not TreeQuorums(2).is_quorum(frozenset())


class TestAvailabilityContrast:
    def test_tree_beats_majority_on_best_case_size(self):
        """O(log n) quorums vs majority's O(n) — the §4 sizing contrast."""
        from repro.quorums.majority import MajorityQuorums

        tree = TreeQuorums(4)  # n = 15
        majority = MajorityQuorums(15)
        assert tree.min_quorum_cardinality() == 4
        assert majority.min_quorum_cardinality() == 8

    def test_generic_spec_over_tree_quorums(self):
        """Tree quorums drive the generic protocol spec end to end."""
        from repro.analysis.config import FailureConfig
        from repro.protocols.quorum_based import QuorumSystemSpec

        tree = TreeQuorums(2)  # n = 3
        spec = QuorumSystemSpec(tree, tree, name="tree")
        assert spec.is_safe(FailureConfig.all_correct(3))
        assert spec.is_live(FailureConfig.all_correct(3))
        # Losing both leaves forces quorums through the root: still live.
        leaves_down = FailureConfig.from_failed_indices(3, [1, 2])
        assert not spec.is_live(leaves_down)  # root alone: needs a child too
        one_leaf = FailureConfig.from_failed_indices(3, [2])
        assert spec.is_live(one_leaf)
