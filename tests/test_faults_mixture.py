"""Unit tests for node models and fleets."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError, InvalidProbabilityError
from repro.faults.curves import ConstantHazard
from repro.faults.mixture import (
    Fleet,
    NodeModel,
    byzantine_fleet,
    fleet_from_curves,
    heterogeneous_fleet,
    uniform_fleet,
)


class TestNodeModel:
    def test_disjoint_outcome_probabilities(self):
        node = NodeModel(p_crash=0.03, p_byzantine=0.01)
        assert node.p_fail == pytest.approx(0.04)
        assert node.p_correct == pytest.approx(0.96)

    def test_mass_exceeding_one_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            NodeModel(p_crash=0.7, p_byzantine=0.4)

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            NodeModel(p_crash=-0.1)
        with pytest.raises(InvalidProbabilityError):
            NodeModel(p_crash=0.0, p_byzantine=1.5)

    def test_as_byzantine_moves_all_mass(self):
        node = NodeModel(p_crash=0.03, p_byzantine=0.01).as_byzantine()
        assert node.p_crash == 0.0
        assert node.p_byzantine == pytest.approx(0.04)

    def test_as_crash_only_moves_all_mass(self):
        node = NodeModel(p_crash=0.03, p_byzantine=0.01).as_crash_only()
        assert node.p_byzantine == 0.0
        assert node.p_crash == pytest.approx(0.04)

    def test_from_curves_competing_risks(self):
        crash = ConstantHazard(3e-4)
        byz = ConstantHazard(1e-4)
        node = NodeModel.from_curves(crash, 1000.0, byz)
        # Total failure mass equals the combined process; split 3:1.
        import math

        assert node.p_fail == pytest.approx(-math.expm1(-0.4))
        assert node.p_crash / node.p_byzantine == pytest.approx(3.0)

    def test_from_curves_zero_hazard(self):
        node = NodeModel.from_curves(ConstantHazard(0.0), 1000.0)
        assert node.p_fail == 0.0


class TestFleet:
    def test_uniform_fleet(self):
        fleet = uniform_fleet(5, 0.02)
        assert fleet.n == 5
        assert fleet.is_homogeneous
        assert fleet.is_crash_only
        assert fleet.failure_probabilities == (0.02,) * 5

    def test_byzantine_fleet(self):
        fleet = byzantine_fleet(4, 0.01)
        assert fleet.byzantine_probabilities == (0.01,) * 4
        assert fleet.crash_probabilities == (0.0,) * 4

    def test_byzantine_fraction_split(self):
        fleet = uniform_fleet(3, 0.1, byzantine_fraction=0.2)
        assert fleet[0].p_byzantine == pytest.approx(0.02)
        assert fleet[0].p_crash == pytest.approx(0.08)

    def test_heterogeneous_fleet_order(self, mixed_fleet):
        assert mixed_fleet.n == 7
        assert mixed_fleet.failure_probabilities == (0.08,) * 4 + (0.01,) * 3
        assert not mixed_fleet.is_homogeneous

    def test_replace_is_functional(self):
        fleet = uniform_fleet(3, 0.05)
        upgraded = fleet.replace(1, NodeModel(0.01))
        assert fleet[1].p_fail == 0.05  # original untouched
        assert upgraded[1].p_fail == 0.01

    def test_replace_bad_index(self):
        with pytest.raises(InvalidConfigurationError):
            uniform_fleet(3, 0.05).replace(5, NodeModel(0.01))

    def test_extend(self):
        fleet = uniform_fleet(2, 0.01).extend([NodeModel(0.5)])
        assert fleet.n == 3
        assert fleet[2].p_fail == 0.5

    def test_sorted_by_reliability(self, mixed_fleet):
        order = mixed_fleet.sorted_by_reliability()
        assert list(order)[:3] == [4, 5, 6]  # the three 1% nodes first

    def test_as_byzantine_view(self, mixed_fleet):
        byz = mixed_fleet.as_byzantine()
        assert byz.crash_probabilities == (0.0,) * 7
        assert byz.byzantine_probabilities == mixed_fleet.failure_probabilities

    def test_hourly_cost_sums(self):
        fleet = Fleet(
            (NodeModel(0.01, cost_per_hour=1.0), NodeModel(0.08, cost_per_hour=0.1))
        )
        assert fleet.hourly_cost == pytest.approx(1.1)

    def test_negative_group_count_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            heterogeneous_fleet([(-1, NodeModel(0.01))])

    def test_fleet_from_curves(self):
        curves = [ConstantHazard.from_window_probability(0.01, 720.0) for _ in range(3)]
        fleet = fleet_from_curves(curves, 720.0)
        assert fleet.n == 3
        assert fleet[0].p_crash == pytest.approx(0.01)

    def test_fleet_from_curves_length_mismatch(self):
        with pytest.raises(InvalidConfigurationError):
            fleet_from_curves([ConstantHazard(0.0)], 10.0, byzantine_curves=[None, None])
