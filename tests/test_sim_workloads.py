"""Unit tests for workload generators."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError
from repro.sim.workloads import (
    apply_workload,
    bursty_workload,
    interleave,
    poisson_workload,
    steady_workload,
    workload_values,
)


class TestGenerators:
    def test_steady_cadence(self):
        events = steady_workload(5, start=1.0, interval=0.5)
        times = [e.at for e in events]
        assert times == [1.0, 1.5, 2.0, 2.5, 3.0]
        assert len({e.value for e in events}) == 5

    def test_poisson_rate(self):
        events = poisson_workload(rate_per_second=50.0, duration=20.0, seed=0)
        assert len(events) == pytest.approx(1000, rel=0.15)
        assert all(0.5 <= e.at < 20.5 for e in events)

    def test_poisson_deterministic_seed(self):
        a = poisson_workload(rate_per_second=10.0, duration=5.0, seed=3)
        b = poisson_workload(rate_per_second=10.0, duration=5.0, seed=3)
        assert [e.at for e in a] == [e.at for e in b]

    def test_bursty_structure(self):
        events = bursty_workload(bursts=3, burst_size=4, burst_interval=1.0)
        assert len(events) == 12
        gaps = [b.at - a.at for a, b in zip(events, events[1:])]
        assert max(gaps) > 0.9  # inter-burst gap
        assert min(gaps) < 0.01  # intra-burst spacing

    def test_interleave_sorted(self):
        merged = interleave(
            steady_workload(3, start=0.5, interval=1.0, prefix="a"),
            steady_workload(3, start=0.7, interval=1.0, prefix="b"),
        )
        times = [e.at for e in merged]
        assert times == sorted(times)
        assert len(merged) == 6

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            steady_workload(-1)
        with pytest.raises(InvalidConfigurationError):
            poisson_workload(rate_per_second=0.0, duration=1.0)
        with pytest.raises(InvalidConfigurationError):
            bursty_workload(bursts=0, burst_size=1, burst_interval=1.0)


class TestApplication:
    def test_apply_and_measure(self):
        from repro.sim import Cluster
        from repro.sim.raft import raft_node_factory
        from repro.sim.stats import latency_summary

        cluster = Cluster(3, raft_node_factory(), seed=0)
        events = steady_workload(8, start=1.0, interval=0.1)
        cluster.start()
        submits = apply_workload(cluster, events)
        cluster.run_until(6.0)
        summary = latency_summary(cluster.trace, submits)
        assert summary.count == 8
        assert summary.p50 < 0.5

    def test_duplicate_values_rejected(self):
        from repro.sim import Cluster
        from repro.sim.raft import raft_node_factory

        cluster = Cluster(3, raft_node_factory(), seed=0)
        events = steady_workload(2, prefix="x") + steady_workload(1, prefix="x")
        with pytest.raises(InvalidConfigurationError):
            apply_workload(cluster, events)

    def test_workload_values_order(self):
        events = bursty_workload(bursts=2, burst_size=2, burst_interval=1.0)
        values = workload_values(events)
        assert values == [e.value for e in events]

    def test_bursty_load_stresses_latency_tail(self):
        """Bursts produce a worse p99 than the same load spread steadily."""
        from repro.sim import Cluster
        from repro.sim.network import FixedLatency
        from repro.sim.raft import raft_node_factory
        from repro.sim.stats import latency_summary

        def run(events):
            cluster = Cluster(3, raft_node_factory(), latency=FixedLatency(0.004), seed=5)
            cluster.start()
            cluster.run_until(0.9)
            submits = apply_workload(cluster, events)
            cluster.run_until(30.0)
            return latency_summary(cluster.trace, submits)

        steady = run(steady_workload(40, start=1.0, interval=0.1))
        bursty = run(
            bursty_workload(bursts=2, burst_size=20, burst_interval=2.0, start=1.0)
        )
        assert steady.count == bursty.count == 40
        # Queueing in the burst inflates the median wait for batched commits.
        assert bursty.p99 >= steady.p50
