"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.faults.mixture import Fleet, NodeModel, heterogeneous_fleet, uniform_fleet


@pytest.fixture
def small_cft_fleet() -> Fleet:
    """Three crash-only nodes at the paper's 1% failure probability."""
    return uniform_fleet(3, 0.01)


@pytest.fixture
def mixed_fleet() -> Fleet:
    """The paper's §3 heterogeneous cluster: 4 × 8% + 3 × 1%."""
    return heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])


@pytest.fixture
def byz_mixture_fleet() -> Fleet:
    """Five nodes with distinct crash and Byzantine mass."""
    return Fleet(tuple(NodeModel(p_crash=0.02 * (i + 1), p_byzantine=0.005) for i in range(5)))
