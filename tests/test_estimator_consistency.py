"""Cross-estimator consistency over a seeded random scenario grid.

FrankWolfe.jl-style dense cross-method testing: one seeded grid of
scenarios (Raft / flexible-quorum Raft / PBFT / explicit quorum-system
specs, varied sizes and failure mixes), every applicable estimator run on
every cell, and the estimators held to their documented agreement levels:

* engine-batched counting vs scalar counting — **bit-for-bit** (the
  batched DP replays the scalar update sequence exactly);
* counting vs exact enumeration — a few ULPs (both are exact
  mathematics, but they sum the same probability mass in different
  orders, so the last ~2 bits may differ; the bound below is ~100x the
  worst deviation observed across seeds);
* Monte-Carlo Wilson 95% intervals vs the exact value — nominal coverage,
  checked at a flake-proof 6-sigma threshold (the ``slow`` marker keeps
  the statistical sweep out of tier-1 runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import pytest

from repro.analysis.counting import counting_reliability
from repro.analysis.exact import exact_reliability
from repro.analysis.montecarlo import monte_carlo_reliability
from repro.engine import ReliabilityEngine, Scenario, ScenarioSet
from repro.faults.mixture import Fleet, NodeModel
from repro.protocols.pbft import PBFTSpec
from repro.protocols.quorum_based import QuorumSystemSpec
from repro.protocols.raft import FlexibleRaftSpec, RaftSpec, majority
from repro.quorums.majority import MajorityQuorums

GRID_SEED = 20260730

#: counting and exact enumeration sum identical mass in different IEEE
#: orders; observed deviations are < 5e-15, bound set ~100x above that.
ULP_TOLERANCE = 5e-13

METRICS = ("safe", "live", "safe_and_live")


@dataclass(frozen=True)
class Cell:
    """One grid cell: a spec/fleet pair plus a per-cell seed."""

    label: str
    spec: object
    fleet: Fleet
    seed: int


def _random_fleet(rng: np.random.Generator, n: int) -> Fleet:
    base = float(rng.uniform(0.005, 0.2))
    byz_fraction = float(rng.choice((0.0, 0.25, 1.0)))
    nodes = []
    for _ in range(n):
        p = base * float(rng.uniform(0.5, 1.5))
        nodes.append(
            NodeModel(p_crash=p * (1.0 - byz_fraction), p_byzantine=p * byz_fraction)
        )
    return Fleet(tuple(nodes))


def build_grid(count: int = 24) -> list[Cell]:
    """A seeded random grid over the symmetric protocol zoo."""
    rng = np.random.default_rng(GRID_SEED)
    cells = []
    for index in range(count):
        n = int(rng.integers(3, 9))
        kind = index % 3
        if kind == 0:
            spec = RaftSpec(n)
        elif kind == 1:
            q_per = int(rng.integers(majority(n), n + 1))
            spec = FlexibleRaftSpec(n, q_per, n - q_per + 1)
        else:
            spec = PBFTSpec(n)
        cells.append(
            Cell(
                label=f"{spec.name}/n={n}/{index}",
                spec=spec,
                fleet=_random_fleet(rng, n),
                seed=int(rng.integers(0, 2**31)),
            )
        )
    return cells


class TestExactAgreement:
    def test_engine_batched_counting_bit_identical_to_scalar(self):
        cells = build_grid()
        scenarios = ScenarioSet.build(
            Scenario(spec=c.spec, fleet=c.fleet, method="counting", label=c.label)
            for c in cells
        )
        batched = ReliabilityEngine().run(scenarios).results
        for cell, result in zip(cells, batched):
            scalar = counting_reliability(cell.spec, cell.fleet)
            for metric in METRICS:
                assert getattr(result, metric).value == getattr(scalar, metric).value, (
                    f"{cell.label}: batched {metric} diverged from scalar counting"
                )

    def test_counting_agrees_with_exact_enumeration(self):
        for cell in build_grid():
            counted = counting_reliability(cell.spec, cell.fleet)
            enumerated = exact_reliability(cell.spec, cell.fleet)
            for metric in METRICS:
                a = getattr(counted, metric).value
                b = getattr(enumerated, metric).value
                assert math.isclose(a, b, rel_tol=ULP_TOLERANCE, abs_tol=ULP_TOLERANCE), (
                    f"{cell.label}: counting {metric}={a!r} vs exact {b!r}"
                )

    def test_quorum_system_spec_exact_matches_threshold_counting(self):
        # A majority quorum-system spec is semantically a Raft spec: its
        # (asymmetric-path) exact enumeration must agree with the counting
        # DP on the equivalent threshold spec.
        rng = np.random.default_rng(GRID_SEED + 1)
        for n in (3, 5, 7):
            fleet = _random_fleet(rng, n)
            quorum_spec = QuorumSystemSpec(
                MajorityQuorums(n), MajorityQuorums(n), name="maj"
            )
            threshold = counting_reliability(RaftSpec(n), fleet)
            enumerated = exact_reliability(quorum_spec, fleet)
            for metric in METRICS:
                a = getattr(threshold, metric).value
                b = getattr(enumerated, metric).value
                assert math.isclose(a, b, rel_tol=ULP_TOLERANCE, abs_tol=ULP_TOLERANCE), (
                    f"majority-quorums n={n} {metric}: {a!r} vs {b!r}"
                )


@pytest.mark.slow
class TestWilsonCoverage:
    """Monte-Carlo 95% intervals cover the exact value at the nominal rate."""

    TRIALS = 20_000

    def test_coverage_over_seeded_grid(self):
        cells = build_grid(30)
        covered = total = 0
        misses = []
        for cell in cells:
            exact = counting_reliability(cell.spec, cell.fleet)
            sampled = monte_carlo_reliability(
                cell.spec, cell.fleet, trials=self.TRIALS, seed=cell.seed
            )
            for metric in METRICS:
                truth = getattr(exact, metric).value
                estimate = getattr(sampled, metric)
                total += 1
                if estimate.ci_low <= truth <= estimate.ci_high:
                    covered += 1
                else:
                    misses.append((cell.label, metric, truth, estimate))
        # 90 Bernoulli(0.95) cells: P(covered < 76) < 1e-8 — flake-proof
        # while still catching any systematic interval bug.
        assert covered >= math.floor(0.84 * total), (
            f"Wilson coverage {covered}/{total}; misses: {misses[:5]}"
        )

    def test_sharded_coverage_matches_legacy_rate(self):
        # Spawned-stream sharding must not distort interval behaviour.
        cells = build_grid(12)
        covered = total = 0
        for cell in cells:
            exact = counting_reliability(cell.spec, cell.fleet)
            sampled = monte_carlo_reliability(
                cell.spec,
                cell.fleet,
                trials=self.TRIALS,
                seed=cell.seed,
                jobs=2,
                pool="thread",
            )
            for metric in METRICS:
                truth = getattr(exact, metric).value
                estimate = getattr(sampled, metric)
                total += 1
                covered += int(estimate.ci_low <= truth <= estimate.ci_high)
        assert covered >= math.floor(0.8 * total)
