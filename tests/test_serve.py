"""The query daemon end to end: routing, coalescing, streaming, resume.

Everything runs against a real :class:`~repro.serve.BackgroundServer` on
an ephemeral port, talked to with stdlib ``http.client`` — the same wire
a production client would use.  The determinism spine of the suite: a
daemon answer is *bit-identical* to running the same queries through the
engine directly, for any worker count, streamed or not, before and after
a daemon restart.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.engine import (
    Answer,
    ExecutionPolicy,
    MTTFQuery,
    Provenance,
    QuerySet,
    ReliabilityEngine,
    Scenario,
    SimulationQuery,
)
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec
from repro.serve import BackgroundServer, ServiceConfig
from repro.serve.coalesce import canonical_query_key

GRID_PAYLOAD = json.dumps(
    {"grid": {"protocols": ["raft"], "sizes": [3, 5, 7], "probabilities": [0.01]}}
)


def scenario(n=5, p=0.01, **kw):
    return Scenario(spec=RaftSpec(n), fleet=uniform_fleet(n, p), **kw)


def post(port: int, payload: str, path: str = "/v1/query") -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request("POST", path, body=payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def get(port: int, path: str) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def answer_values(rows: list[dict]) -> list[dict]:
    """The value-bearing fields of response rows (no timing, no cache bit)."""
    return [row["answer"] for row in rows]


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServiceConfig(port=0)) as running:
        yield running


class TestRouting:
    def test_healthz(self, server):
        status, body = get(server.port, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0.0

    def test_unknown_path_404(self, server):
        status, body = get(server.port, "/nope")
        assert status == 404
        assert "no route" in body["error"]

    def test_wrong_method_405(self, server):
        status, _body = get(server.port, "/v1/query")
        assert status == 405
        status, _body = post(server.port, "{}", path="/healthz")
        assert status == 405

    def test_bad_json_400(self, server):
        status, body = post(server.port, "{not json")
        assert status == 400
        assert "invalid query payload" in body["error"]

    def test_unknown_shape_400(self, server):
        status, _body = post(server.port, '{"fnord": 1}')
        assert status == 400

    def test_empty_queries_400(self, server):
        status, body = post(server.port, '{"queries": []}')
        assert status == 400
        assert "no queries" in body["error"]

    def test_oversized_body_413(self):
        config = ServiceConfig(port=0, max_body_bytes=64)
        with BackgroundServer(config) as small:
            status, body = post(small.port, "x" * 100)
            assert status == 413
            assert "exceeds limit" in body["error"]


class TestAnswers:
    def test_round_trip_matches_direct_engine_run(self, server):
        """The wire adds nothing: daemon rows == direct engine rows."""
        status, body = post(server.port, GRID_PAYLOAD)
        assert status == 200
        assert body["count"] == 3
        direct = ReliabilityEngine().run(
            QuerySet.from_json(GRID_PAYLOAD),
            policy=ExecutionPolicy.for_service(1),
        )
        assert answer_values(body["answers"]) == answer_values(
            [answer.to_dict() for answer in direct]
        )

    def test_answers_identical_at_every_worker_count(self):
        """jobs=4 and jobs=1 daemons serve bit-identical values."""
        bodies = []
        for jobs in (1, 4):
            with BackgroundServer(ServiceConfig(port=0, jobs=jobs)) as running:
                status, body = post(running.port, GRID_PAYLOAD)
                assert status == 200
                bodies.append(answer_values(body["answers"]))
        assert bodies[0] == bodies[1]

    def test_repeat_request_hits_warm_cache(self, server):
        payload = json.dumps(
            {"grid": {"protocols": ["raft"], "sizes": [9], "probabilities": [0.02]}}
        )
        first_status, first = post(server.port, payload)
        second_status, second = post(server.port, payload)
        assert (first_status, second_status) == (200, 200)
        assert second["cache_hits"] == 1
        assert answer_values(second["answers"]) == answer_values(first["answers"])

    def test_mixed_query_storm_is_bit_identical(self, server):
        """Concurrent mixed-kind storms all see the single-client answers."""
        query_set = QuerySet.build(
            [
                MTTFQuery.from_afr(
                    scenario(5, label="m"), afr=0.08, mttr_hours=24.0
                ),
                SimulationQuery(
                    scenario(3, seed=11, label="s"),
                    replicas=8,
                    duration=5.0,
                    commands=2,
                ),
            ]
        )
        payload = query_set.to_json()
        reference = answer_values(
            [
                answer.to_dict()
                for answer in ReliabilityEngine().run(
                    query_set, policy=ExecutionPolicy.for_service(1)
                )
            ]
        )
        results: list = [None] * 8
        payloads = [payload, GRID_PAYLOAD]

        def storm(slot: int) -> None:
            status, body = post(server.port, payloads[slot % 2])
            results[slot] = (status, answer_values(body["answers"]))

        threads = [
            threading.Thread(target=storm, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        grid_reference = answer_values(
            [
                answer.to_dict()
                for answer in ReliabilityEngine().run(
                    QuerySet.from_json(GRID_PAYLOAD),
                    policy=ExecutionPolicy.for_service(1),
                )
            ]
        )
        for slot, outcome in enumerate(results):
            assert outcome is not None, f"storm thread {slot} never finished"
            status, values = outcome
            assert status == 200
            assert values == (reference if slot % 2 == 0 else grid_reference)


class TestCoalescing:
    def test_identical_inflight_queries_execute_once(self):
        """The single-flight proof: N concurrent identical queries, one run.

        A deliberately slow injected backend counts executions; eight
        clients fire the same query while the first execution is still in
        flight, so seven must join it rather than start their own.
        """
        engine = ReliabilityEngine()
        executions: list[str] = []
        lock = threading.Lock()

        def slow_backend(eng, queries, policy):
            with lock:
                executions.append("run")
            time.sleep(1.0)  # hold the execution open for the latecomers
            return [
                Answer(q, 123.456, Provenance(estimator="slow", backend="mttf"))
                for q in queries
            ]

        engine.register_backend("mttf", slow_backend)
        payload = QuerySet.build(
            [MTTFQuery.from_afr(scenario(5), afr=0.08, mttr_hours=24.0)]
        ).to_json()
        clients = 8
        results: list = [None] * clients
        with BackgroundServer(ServiceConfig(port=0), engine=engine) as running:
            def fire(slot: int) -> None:
                results[slot] = post(running.port, payload)

            threads = [
                threading.Thread(target=fire, args=(slot,))
                for slot in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            _status, metrics = get(running.port, "/metrics")
        assert len(executions) == 1
        statuses = [result[0] for result in results]
        assert statuses == [200] * clients
        values = {json.dumps(result[1]["answers"][0]["answer"]) for result in results}
        assert len(values) == 1  # everyone got the one execution's answer
        assert sum(result[1]["coalesced"] for result in results) == clients - 1
        assert metrics["coalesced_total"] == clients - 1

    def test_canonical_key_distinguishes_different_queries(self):
        one = MTTFQuery.from_afr(scenario(5), afr=0.08, mttr_hours=24.0)
        two = MTTFQuery.from_afr(scenario(5), afr=0.09, mttr_hours=24.0)
        same = MTTFQuery.from_afr(scenario(5), afr=0.08, mttr_hours=24.0)
        assert canonical_query_key(one) == canonical_query_key(same)
        assert canonical_query_key(one) != canonical_query_key(two)


class TestStreaming:
    def test_stream_emits_one_line_per_answer(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=120)
        try:
            conn.request("POST", "/v1/query?stream=1", body=GRID_PAYLOAD)
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            lines = [
                json.loads(line)
                for line in response.read().decode().strip().split("\n")
            ]
        finally:
            conn.close()
        summary = lines[-1]
        assert summary["done"] is True
        assert summary["answers"] == 3
        assert summary["errors"] == 0
        rows = sorted(lines[:-1], key=lambda row: row["index"])
        assert [row["index"] for row in rows] == [0, 1, 2]
        _status, plain = post(server.port, GRID_PAYLOAD)
        assert answer_values(rows) == answer_values(plain["answers"])


class TestRestartResume:
    def test_restart_resumes_campaign_byte_identically(self, tmp_path):
        """Same journal dir across a daemon restart: same bytes out.

        Daemon A answers a simulation campaign and journals its shards.
        The journal is then truncated to a single completed shard — the
        crash-mid-campaign shape — and daemon B (fresh engine, cold memo)
        must resume from that prefix and produce the identical answer,
        which also matches a journal-free run.
        """
        checkpoint_dir = tmp_path / "journals"
        config = ServiceConfig(
            port=0, checkpoint_dir=str(checkpoint_dir), shard_trials=16
        )
        payload = QuerySet.build(
            [
                SimulationQuery(
                    scenario(3, seed=29, label="campaign"),
                    replicas=48,
                    duration=5.0,
                    commands=2,
                )
            ]
        ).to_json()
        with BackgroundServer(config) as daemon_a:
            status_a, body_a = post(daemon_a.port, payload)
        assert status_a == 200
        journals = list(checkpoint_dir.glob("campaign-*.jsonl"))
        assert len(journals) == 1
        lines = journals[0].read_text().splitlines()
        assert len(lines) >= 3  # header + at least 48/16 shard rows
        journals[0].write_text("\n".join(lines[:2]) + "\n")  # crash shape

        with BackgroundServer(config) as daemon_b:
            status_b, body_b = post(daemon_b.port, payload)
        assert status_b == 200
        assert answer_values(body_b["answers"]) == answer_values(
            body_a["answers"]
        )

        clean = ServiceConfig(port=0, shard_trials=16)
        with BackgroundServer(clean) as daemon_c:
            status_c, body_c = post(daemon_c.port, payload)
        assert status_c == 200
        assert answer_values(body_c["answers"]) == answer_values(
            body_a["answers"]
        )


class TestMetrics:
    def test_metrics_shape_and_progression(self):
        with BackgroundServer(ServiceConfig(port=0)) as running:
            post(running.port, GRID_PAYLOAD)
            post(running.port, GRID_PAYLOAD)
            _status, metrics = get(running.port, "/metrics")
        assert metrics["queries_total"] == 6
        assert metrics["answers_total"] == 6
        assert metrics["requests_total"] >= 2
        assert metrics["engine_cache"]["hits"] >= 3
        assert metrics["engine_cache"]["max_size"] == 4096
        assert 0.0 < metrics["engine_cache"]["hit_rate"] <= 1.0
        assert metrics["latency_seconds"]["count"] >= 2
        assert metrics["latency_seconds"]["p50"] >= 0.0
        assert "POST /v1/query -> 200" in metrics["responses"]
        assert metrics["campaigns"]["answer_cache_hits"] == 3


class TestCli:
    def test_serve_subcommand_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--jobs",
                "2",
                "--checkpoint-dir",
                "/tmp/journals",
                "--cache-size",
                "128",
            ]
        )
        assert args.port == 0
        assert args.jobs == 2
        assert args.checkpoint_dir == "/tmp/journals"
        assert args.cache_size == 128
        assert args.on_shard_failure == "degrade"
        assert args.retries == 1
