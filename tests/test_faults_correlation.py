"""Unit tests for correlated-failure models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidConfigurationError, InvalidProbabilityError
from repro.faults.correlation import (
    BetaBinomialContagion,
    CommonShockModel,
    IndependentFailures,
    ShockGroup,
    correlated_fleet_sampler,
    rack_shocks,
    rollout_shock,
)
from repro.faults.mixture import uniform_fleet


class TestIndependent:
    def test_marginals(self):
        model = IndependentFailures(uniform_fleet(10, 0.3))
        assert np.allclose(model.marginal_probabilities(), 0.3)

    def test_sample_frequency(self):
        model = IndependentFailures(uniform_fleet(20, 0.25))
        samples = model.sample_many(4000, seed=0)
        assert samples.mean() == pytest.approx(0.25, abs=0.02)

    def test_near_zero_pairwise_correlation(self):
        model = IndependentFailures(uniform_fleet(6, 0.3))
        assert abs(model.empirical_pairwise_correlation(trials=20_000, seed=1)) < 0.03


class TestCommonShock:
    def test_degenerates_to_independent_without_shocks(self):
        fleet = uniform_fleet(8, 0.1)
        model = CommonShockModel(fleet, ())
        assert np.allclose(model.marginal_probabilities(), 0.1)

    def test_marginals_include_shock_mass(self):
        fleet = uniform_fleet(4, 0.1)
        shock = ShockGroup((0, 1), probability=0.5, lethality=1.0)
        model = CommonShockModel(fleet, (shock,))
        marginals = model.marginal_probabilities()
        assert marginals[0] == pytest.approx(1 - 0.9 * 0.5)
        assert marginals[2] == pytest.approx(0.1)

    def test_positive_correlation_from_shock(self):
        fleet = uniform_fleet(6, 0.05)
        model = CommonShockModel(fleet, (rollout_shock(fleet, 0.3),))
        assert model.empirical_pairwise_correlation(trials=20_000, seed=2) > 0.5

    def test_count_pmf_sums_to_one(self):
        fleet = uniform_fleet(5, 0.1)
        model = CommonShockModel(fleet, (rollout_shock(fleet, 0.2, lethality=0.5),))
        pmf = model.failure_count_pmf()
        assert pmf.sum() == pytest.approx(1.0)

    def test_count_pmf_matches_sampling(self):
        fleet = uniform_fleet(4, 0.1)
        model = CommonShockModel(fleet, (rollout_shock(fleet, 0.4),))
        pmf = model.failure_count_pmf()
        samples = model.sample_many(30_000, seed=3).sum(axis=1)
        empirical = np.bincount(samples, minlength=5) / samples.size
        assert np.allclose(pmf, empirical, atol=0.015)

    def test_rack_shocks_partition(self):
        fleet = uniform_fleet(7, 0.05)
        shocks = rack_shocks(fleet, rack_size=3, probability=0.1)
        members = sorted(i for s in shocks for i in s.members)
        assert members == list(range(7))
        assert len(shocks) == 3

    def test_member_out_of_range_rejected(self):
        fleet = uniform_fleet(3, 0.1)
        with pytest.raises(InvalidConfigurationError):
            CommonShockModel(fleet, (ShockGroup((5,), 0.1),))

    def test_bad_shock_probability(self):
        with pytest.raises(InvalidProbabilityError):
            ShockGroup((0,), probability=1.5)


class TestBetaBinomial:
    def test_marginal_and_correlation_formulas(self):
        model = BetaBinomialContagion.from_marginal_and_correlation(10, 0.1, 0.2)
        assert model.marginal == pytest.approx(0.1)
        assert model.pairwise_correlation == pytest.approx(0.2)

    def test_count_pmf_sums_to_one(self):
        model = BetaBinomialContagion(12, 2.0, 8.0)
        assert model.failure_count_pmf().sum() == pytest.approx(1.0)

    def test_count_pmf_mean(self):
        model = BetaBinomialContagion(10, 2.0, 8.0)
        pmf = model.failure_count_pmf()
        mean = sum(k * p for k, p in enumerate(pmf))
        assert mean == pytest.approx(10 * model.marginal)

    def test_sampling_matches_marginal(self):
        model = BetaBinomialContagion(8, 3.0, 7.0)
        samples = model.sample_many(20_000, seed=4)
        assert samples.mean() == pytest.approx(0.3, abs=0.02)

    def test_contagion_raises_tail_risk_vs_independent(self):
        """Correlation fattens the many-simultaneous-failures tail (§2)."""
        n, marginal = 9, 0.1
        contagion = BetaBinomialContagion.from_marginal_and_correlation(n, marginal, 0.3)
        pmf = contagion.failure_count_pmf()
        from scipy import stats

        p_majority_corr = pmf[5:].sum()
        p_majority_indep = float(stats.binom.sf(4, n, marginal))
        assert p_majority_corr > 10 * p_majority_indep

    def test_invalid_parameters(self):
        with pytest.raises(InvalidConfigurationError):
            BetaBinomialContagion(5, 0.0, 1.0)
        with pytest.raises(InvalidProbabilityError):
            BetaBinomialContagion.from_marginal_and_correlation(5, 0.0, 0.2)


class TestSamplerFactory:
    def test_no_shocks_gives_independent(self):
        model = correlated_fleet_sampler(uniform_fleet(3, 0.1))
        assert isinstance(model, IndependentFailures)

    def test_with_shocks_gives_common_shock(self):
        fleet = uniform_fleet(3, 0.1)
        model = correlated_fleet_sampler(fleet, [rollout_shock(fleet, 0.1)])
        assert isinstance(model, CommonShockModel)
