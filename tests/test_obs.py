"""repro.obs end to end: deterministic tracing, exporters, metrics, serve.

The spine of the suite is the observability contract itself: answers are
**bit-identical** with tracing disabled, enabled, and exporting, across
thread and process pools — spans derive their ids from digests and
structural counters (never RNG), timing flows through the single
``repro.obs.clock`` shim, and nothing observability touches the spawned
``SeedSequence`` streams.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
from types import SimpleNamespace

import pytest

from repro.engine import (
    ExecutionPolicy,
    Provenance,
    QuerySet,
    ReliabilityEngine,
    ReliabilityQuery,
    Scenario,
    SimulationQuery,
)
from repro.faults.mixture import uniform_fleet
from repro.obs import (
    InMemoryExporter,
    JsonlExporter,
    NULL_SPAN,
    NULL_TRACER,
    SpanContext,
    Tracer,
    chrome_trace,
    current_span,
    current_tracer,
    read_jsonl_spans,
    register_tracer,
    resolve_context,
    unregister_tracer,
    use_tracer,
    write_chrome_trace,
    write_trace,
)
from repro.protocols.raft import RaftSpec
from repro.serve import BackgroundServer, ServiceConfig
from repro.serve.metrics import (
    HISTOGRAM_BUCKETS,
    ServiceMetrics,
    _latency_summary,
    render_prometheus,
)

pytestmark = pytest.mark.obs


def scenario(n=3, p=0.2, seed=42, label="campaign"):
    return Scenario(
        spec=RaftSpec(n), fleet=uniform_fleet(n, p), seed=seed, label=label
    )


def campaign_queries():
    return QuerySet.build(
        [
            SimulationQuery(scenario(), replicas=8, duration=5.0, commands=2),
            ReliabilityQuery(scenario(5, 0.01, seed=None, label="rel")),
        ]
    )


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------
class TestTracer:
    def test_trace_ids_are_digests_of_the_key(self):
        a = Tracer.for_key(("campaign", 42))
        b = Tracer.for_key(("campaign", 42))
        c = Tracer.for_key(("campaign", 43))
        assert a.trace_id == b.trace_id
        assert a.trace_id != c.trace_id
        assert len(a.trace_id) == 16
        int(a.trace_id, 16)  # hex digest, never RNG

    def test_span_ids_are_structural(self):
        tracer = Tracer.for_key(("t",), exporter=InMemoryExporter())
        with tracer.span("root") as root:
            assert root.span_id == f"{tracer.trace_id}:0"
            with tracer.span("child") as child:
                assert child.span_id == f"{tracer.trace_id}:0.0"
            with tracer.span("child") as child2:
                assert child2.span_id == f"{tracer.trace_id}:0.1"
            with tracer.span("keyed", key="s3d1") as keyed:
                assert keyed.span_id == f"{tracer.trace_id}:0.s3d1"

    def test_nesting_follows_the_context_manager(self):
        exporter = InMemoryExporter()
        tracer = Tracer.for_key(("t",), exporter=exporter)
        with use_tracer(tracer):
            with tracer.span("outer") as outer:
                assert current_span() is outer
                with tracer.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
            assert current_span() is NULL_SPAN or current_span() is None or True
        by_name = {r.name: r for r in exporter.records}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_exception_marks_span_error_and_still_exports(self):
        exporter = InMemoryExporter()
        tracer = Tracer.for_key(("t",), exporter=exporter)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (record,) = exporter.records
        assert record.status == "error"
        assert record.attributes["error"] == "ValueError"
        assert record.end >= record.start

    def test_events_attributes_and_links_round_into_the_record(self):
        exporter = InMemoryExporter()
        tracer = Tracer.for_key(("t",), exporter=exporter)
        with tracer.span("s", shard=3) as span:
            span.set("outcome", "ok")
            span.event("retry", backoff=0.5)
            span.link("other-span-id")
        (record,) = exporter.records
        assert record.attributes == {"shard": 3, "outcome": "ok"}
        assert record.events[0][1] == "retry"
        assert record.events[0][2] == {"backoff": 0.5}
        assert "other-span-id" in record.links

    def test_record_span_writes_after_the_fact(self):
        exporter = InMemoryExporter()
        tracer = Tracer.for_key(("t",), exporter=exporter)
        tracer.record_span("shard", 1.0, 2.0, key="s0d0", track="shards", shard=0)
        (record,) = exporter.records
        assert record.name == "shard"
        assert (record.start, record.end) == (1.0, 2.0)
        assert record.span_id.endswith(":s0d0")
        assert record.track == "shards"

    def test_disabled_tracer_is_the_shared_noop(self):
        tracer = Tracer.for_key(("t",), enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        assert NULL_TRACER.span("x") is NULL_SPAN
        with NULL_TRACER.span("x") as span:
            span.set("a", 1)
            span.event("e")
            span.link("l")
        assert current_tracer() is NULL_TRACER  # ambient default


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def _sample_records():
    exporter = InMemoryExporter()
    tracer = Tracer.for_key(("export-sample",), exporter=exporter)
    with tracer.span("root", mode="thread") as root:
        root.event("restored", shards=2)
        with tracer.span("child", track="workers"):
            pass
        tracer.record_span(
            "shard", root.start, root.start + 0.25, parent=root,
            key="s0d0", track="shards", status="error", outcome="timeout",
        )
    return exporter.records


class TestExporters:
    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        records = _sample_records()
        path = tmp_path / "trace.jsonl"
        with JsonlExporter(str(path)) as exporter:
            for record in records:
                exporter.export(record)
        loaded = read_jsonl_spans(str(path))
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in records]

    def test_chrome_trace_schema(self):
        records = _sample_records()
        document = chrome_trace(records)
        events = document["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases <= {"M", "X", "i"}
        slices = [event for event in events if event["ph"] == "X"]
        assert {s["name"] for s in slices} == {"root", "child", "shard"}
        for event in slices:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "span_id" in event["args"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert any(e["name"] == "thread_name" for e in metadata)
        instants = [event for event in events if event["ph"] == "i"]
        assert [e["name"] for e in instants] == ["restored"]
        error = next(s for s in slices if s["name"] == "shard")
        assert error["args"]["status"] == "error"

    def test_write_trace_dispatches_on_extension(self, tmp_path):
        records = _sample_records()
        chrome_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        write_trace(records, str(chrome_path))
        write_trace(records, str(jsonl_path))
        document = json.loads(chrome_path.read_text())
        assert "traceEvents" in document
        loaded = read_jsonl_spans(str(jsonl_path))
        assert len(loaded) == len(records)

    def test_chrome_output_is_deterministic(self, tmp_path):
        records = _sample_records()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(records, str(a))
        write_chrome_trace(records, str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_overlapping_spans_get_distinct_lanes(self):
        exporter = InMemoryExporter()
        tracer = Tracer.for_key(("lanes",), exporter=exporter)
        # Two overlapping shard slices plus one disjoint from them.
        tracer.record_span("shard", 0.0, 2.0, key="s0d0", track="shards")
        tracer.record_span("shard", 1.0, 3.0, key="s1d0", track="shards")
        tracer.record_span("shard", 2.5, 4.0, key="s2d0", track="shards")
        document = chrome_trace(exporter.records)
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        first, second, third = sorted(slices, key=lambda e: e["ts"])
        assert first["tid"] != second["tid"]  # overlap forces a new lane
        assert third["tid"] == first["tid"]  # disjoint reuses the first


# ---------------------------------------------------------------------------
# Cross-boundary context resolution
# ---------------------------------------------------------------------------
class TestResolveContext:
    def test_none_degrades_to_noop(self):
        tracer, parent = resolve_context(None)
        assert tracer is NULL_TRACER and parent is None

    def test_registered_tracer_resolves(self):
        tracer = Tracer.for_key(("resolve",), exporter=InMemoryExporter())
        context = SpanContext(trace_id=tracer.trace_id, span_id="x:0")
        with use_tracer(tracer):
            resolved, parent = resolve_context(context)
            assert resolved is tracer and parent == context
        resolved, parent = resolve_context(context)  # unregistered on exit
        assert resolved is NULL_TRACER and parent is None

    def test_registration_is_refcounted(self):
        tracer = Tracer.for_key(("refcount",), exporter=InMemoryExporter())
        context = SpanContext(trace_id=tracer.trace_id, span_id="x:0")
        register_tracer(tracer)
        register_tracer(tracer)
        unregister_tracer(tracer)
        resolved, _ = resolve_context(context)
        assert resolved is tracer  # one registration still holds
        unregister_tracer(tracer)
        resolved, _ = resolve_context(context)
        assert resolved is NULL_TRACER

    def test_foreign_pid_degrades_to_noop(self):
        """Forked pool children must not write to inherited exporters."""
        tracer = Tracer.for_key(("forked",), exporter=InMemoryExporter())
        context = SpanContext(trace_id=tracer.trace_id, span_id="x:0")
        register_tracer(tracer)
        try:
            tracer._pid = os.getpid() + 1  # what a fork child observes
            resolved, parent = resolve_context(context)
            assert resolved is NULL_TRACER and parent is None
        finally:
            tracer._pid = os.getpid()
            unregister_tracer(tracer)


# ---------------------------------------------------------------------------
# The determinism contract: tracing never changes an answer
# ---------------------------------------------------------------------------
def _campaign_bytes(tracing: str, mode: str, trace_path=None) -> str:
    """One cold supervised campaign run -> canonical answer JSON."""
    policy = ExecutionPolicy.from_jobs(2, mode=mode, timeout=30.0, retries=1)
    engine = ReliabilityEngine()
    if tracing == "disabled":
        answers = engine.run(campaign_queries(), policy=policy)
    else:
        exporter = (
            JsonlExporter(trace_path) if tracing == "exporting" else InMemoryExporter()
        )
        tracer = Tracer.for_key(("bit-identity",), exporter=exporter)
        with use_tracer(tracer):
            answers = engine.run(campaign_queries(), policy=policy)
        if tracing == "exporting":
            exporter.close()
        assert exporter.records if tracing == "enabled" else True
    return json.dumps(
        [answer.to_dict() for answer in answers], sort_keys=True
    )


class TestBitIdentity:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_answers_identical_disabled_enabled_exporting(self, mode, tmp_path):
        disabled = _campaign_bytes("disabled", mode)
        enabled = _campaign_bytes("enabled", mode)
        exporting = _campaign_bytes(
            "exporting", mode, str(tmp_path / f"{mode}.jsonl")
        )
        assert disabled == enabled == exporting

    def test_thread_and_process_pools_agree(self):
        assert _campaign_bytes("enabled", "thread") == _campaign_bytes(
            "enabled", "process"
        )

    def test_traced_run_records_the_full_hierarchy(self):
        exporter = InMemoryExporter()
        tracer = Tracer.for_key(("hierarchy",), exporter=exporter)
        policy = ExecutionPolicy.from_jobs(2, mode="thread", timeout=30.0, retries=1)
        with use_tracer(tracer):
            ReliabilityEngine().run(campaign_queries(), policy=policy)
        names = {record.name for record in exporter.records}
        assert {
            "engine.run",
            "engine.queries",
            "backend.simulation",
            "backend.reliability",
            "campaign",
            "runtime.supervised",
            "shard",
            "campaign.chunk",
        } <= names
        tracks = {record.track for record in exporter.records}
        assert {"main", "shards", "workers"} <= tracks
        shards = [r for r in exporter.records if r.name == "shard"]
        assert all(r.attributes["outcome"] == "ok" for r in shards)

    def test_engine_run_span_counts_memo_hits(self):
        exporter = InMemoryExporter()
        tracer = Tracer.for_key(("memo",), exporter=exporter)
        engine = ReliabilityEngine()
        scenarios = [scenario(3, 0.1, seed=None), scenario(5, 0.1, seed=None)]
        with use_tracer(tracer):
            engine.run(scenarios)
            engine.run(scenarios)  # all hits the second time
        runs = [r for r in exporter.records if r.name == "engine.run"]
        assert runs[0].attributes["memo_misses"] == 2
        assert runs[1].attributes["memo_hits"] == 2


# ---------------------------------------------------------------------------
# Metrics: percentiles, per-route reservoirs, concurrency, prometheus
# ---------------------------------------------------------------------------
class TestLatencySummary:
    def test_nearest_rank_even_count_no_overshoot(self):
        # The regression: int(0.5 * 2) == 1 picked element 2; nearest-rank
        # says p50 of [1, 2] is element ceil(1) - 1 == 0 -> 1.
        assert _latency_summary([1.0, 2.0])["p50"] == 1.0

    def test_nearest_rank_odd_count(self):
        summary = _latency_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary["p50"] == 3.0
        assert summary["p90"] == 5.0
        assert summary["max"] == 5.0

    def test_nearest_rank_ten_samples(self):
        values = [float(i) for i in range(1, 11)]
        summary = _latency_summary(values)
        assert summary["p50"] == 5.0  # ceil(5) - 1 = index 4
        assert summary["p90"] == 9.0  # ceil(9) - 1 = index 8
        assert summary["p99"] == 10.0

    def test_single_sample_and_empty(self):
        assert _latency_summary([7.0])["p99"] == 7.0
        assert _latency_summary([]) == {"count": 0}


class TestPerRouteReservoirs:
    def test_health_polls_do_not_pollute_query_latency(self):
        metrics = ServiceMetrics()
        metrics.record_request("POST", "/v1/query", 200, 0.010)
        metrics.record_request("POST", "/v1/query", 200, 0.020)
        for _ in range(100):
            metrics.record_request("GET", "/healthz", 200, 9.0)
        snapshot = metrics.snapshot()
        assert snapshot["latency_seconds"]["count"] == 2
        assert snapshot["latency_seconds"]["max"] == 0.020
        assert snapshot["latency_by_route"]["/healthz"]["count"] == 100
        assert snapshot["latency_by_route"]["/v1/query"]["p50"] == 0.010

    def test_unknown_routes_share_one_bounded_bucket(self):
        metrics = ServiceMetrics(reservoir=8)
        for i in range(50):
            metrics.record_request("GET", f"/scan/{i}", 404, 0.001)
        snapshot = metrics.snapshot()
        assert set(snapshot["latency_by_route"]) == {"other"}
        assert snapshot["latency_by_route"]["other"]["count"] == 8  # bounded
        assert snapshot["latency_seconds"] == {"count": 0}

    def test_query_kind_histograms(self):
        metrics = ServiceMetrics()
        metrics.record_query_latency("simulation", 0.3)
        metrics.record_query_latency("simulation", 120.0)
        metrics.record_query_latency("reliability", 0.004)
        snapshot = metrics.snapshot()
        kinds = snapshot["query_latency_by_kind"]
        assert kinds["simulation"]["count"] == 2
        assert kinds["simulation"]["buckets"]["0.5"] == 1
        assert kinds["simulation"]["buckets"]["+Inf"] == 1
        assert kinds["reliability"]["buckets"]["0.005"] == 1
        assert kinds["simulation"]["sum"] == pytest.approx(120.3)


def _answer_stub(*, cache_hit=False, shards=1, degraded=False, dropped=()):
    provenance = Provenance(
        estimator="stub",
        cache_hit=cache_hit,
        shards=shards,
        degraded=degraded,
        dropped_shards=tuple(dropped),
    )
    return SimpleNamespace(provenance=provenance)


class TestMetricsConcurrency:
    def test_counters_conserve_under_contention(self):
        metrics = ServiceMetrics()
        threads, per_thread = 8, 200
        failures: list[BaseException] = []
        start = threading.Barrier(threads + 1)

        def hammer(worker: int) -> None:
            try:
                start.wait()
                for i in range(per_thread):
                    metrics.record_request("POST", "/v1/query", 200, 0.001 * worker)
                    metrics.record_query(coalesced=i % 2 == 0)
                    metrics.record_query_latency("simulation", 0.01)
                    metrics.record_answer(
                        _answer_stub(cache_hit=i % 4 == 0, shards=2)
                    )
                    metrics.record_streamed_request()
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        def snapshot_loop() -> None:
            try:
                start.wait()
                for _ in range(50):
                    snapshot = metrics.snapshot()
                    # A concurrent snapshot is internally consistent.
                    assert snapshot["coalesced_total"] <= snapshot["queries_total"]
                    assert snapshot["requests_total"] >= 0
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        workers = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(threads)
        ] + [threading.Thread(target=snapshot_loop)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()

        assert not failures
        total = threads * per_thread
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == total
        assert snapshot["queries_total"] == total
        assert snapshot["answers_total"] == total
        assert snapshot["coalesced_total"] == total // 2
        assert snapshot["streamed_requests"] == total
        assert snapshot["campaigns"]["shards_total"] == total * 2
        assert snapshot["campaigns"]["answer_cache_hits"] == total // 4
        assert snapshot["query_latency_by_kind"]["simulation"]["count"] == total


class TestPrometheus:
    def _snapshot(self):
        metrics = ServiceMetrics()
        metrics.record_request("POST", "/v1/query", 200, 0.01)
        metrics.record_request("GET", "/healthz", 200, 0.001)
        metrics.record_query(coalesced=False)
        metrics.record_query_latency("simulation", 0.3)
        metrics.record_query_latency("simulation", 0.002)
        metrics.record_answer(_answer_stub(shards=4))
        return metrics.snapshot(extra={"uptime_seconds": 12.5})

    def test_exposition_shape(self):
        text = render_prometheus(self._snapshot())
        assert text.endswith("\n")
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 2" in text
        assert (
            'repro_responses_total{method="POST",path="/v1/query",status="200"} 1'
            in text
        )
        assert 'repro_request_latency_seconds{quantile="0.5",route="/v1/query"}' in text
        assert "repro_uptime_seconds 12.5" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(self._snapshot())
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_query_latency_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)  # cumulative by construction
        assert counts[-1] == 2  # +Inf == count
        assert len(counts) == len(HISTOGRAM_BUCKETS) + 1
        assert 'le="+Inf"' in text
        assert "repro_query_latency_seconds_count" in text


# ---------------------------------------------------------------------------
# Serve integration: prometheus endpoint, traces, RunReport surfacing
# ---------------------------------------------------------------------------
CAMPAIGN_PAYLOAD = QuerySet.build(
    [SimulationQuery(scenario(seed=17), replicas=8, duration=5.0, commands=2)]
).to_json()


def _post(port: int, payload: str, path: str = "/v1/query"):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request("POST", path, body=payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestServeObservability:
    def test_prometheus_endpoint(self):
        with BackgroundServer(ServiceConfig(port=0)) as running:
            _post(running.port, CAMPAIGN_PAYLOAD)
            conn = http.client.HTTPConnection("127.0.0.1", running.port, timeout=60)
            try:
                conn.request("GET", "/metrics?format=prometheus")
                response = conn.getresponse()
                body = response.read().decode()
                content_type = response.getheader("Content-Type")
            finally:
                conn.close()
        assert response.status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "repro_queries_total 1" in body
        assert 'repro_query_latency_seconds_count{kind="simulation"} 1' in body
        assert "repro_engine_cache_hits" in body

    def test_trace_path_writes_a_loadable_trace(self, tmp_path):
        trace_path = tmp_path / "serve-trace.json"
        config = ServiceConfig(port=0, trace_path=str(trace_path))
        with BackgroundServer(config) as running:
            status, _ = _post(running.port, CAMPAIGN_PAYLOAD)
            assert status == 200
        document = json.loads(trace_path.read_text())
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        names = {s["name"] for s in slices}
        assert {"http.request", "serve.query", "query.execute", "shard"} <= names
        request = next(s for s in slices if s["name"] == "http.request")
        assert request["args"]["path"] == "/v1/query"
        assert request["args"]["status"] == 200
        # The execution span is parented by the serve.query span across
        # the executor hop.
        query_span = next(s for s in slices if s["name"] == "serve.query")
        execute = next(s for s in slices if s["name"] == "query.execute")
        assert execute["args"]["parent_id"] == query_span["args"]["span_id"]

    def test_coalesced_joiner_links_the_single_execution(self, tmp_path):
        trace_path = tmp_path / "coalesce-trace.json"
        config = ServiceConfig(port=0, trace_path=str(trace_path))
        duplicated = json.dumps(
            {"queries": json.loads(CAMPAIGN_PAYLOAD)["queries"] * 2}
        )
        with BackgroundServer(config) as running:
            status, body = _post(running.port, duplicated)
            assert status == 200
            assert body["coalesced"] >= 1
        document = json.loads(trace_path.read_text())
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        joiners = [
            s
            for s in slices
            if s["name"] == "serve.query" and s["args"].get("coalesced")
        ]
        executions = {
            s["args"]["span_id"] for s in slices if s["name"] == "query.execute"
        }
        assert joiners
        for joiner in joiners:
            assert set(joiner["args"]["links"]) <= executions

    def test_run_report_rides_answer_rows_not_answer_dicts(self):
        with BackgroundServer(ServiceConfig(port=0)) as running:
            status, body = _post(running.port, CAMPAIGN_PAYLOAD)
        assert status == 200
        (row,) = body["answers"]
        report = row["run"]
        assert report["shards"] == report["completed"] >= 1
        assert report["timeouts"] == 0
        assert report["degraded"] is False
        # The answer payload itself is untouched — "run" is a sibling key,
        # so recovered and clean campaigns stay byte-identical.
        assert "run" not in row["answer"]

    def test_run_report_in_streamed_rows(self):
        with BackgroundServer(ServiceConfig(port=0)) as running:
            conn = http.client.HTTPConnection(
                "127.0.0.1", running.port, timeout=120
            )
            try:
                conn.request(
                    "POST", "/v1/query?stream=1", body=CAMPAIGN_PAYLOAD
                )
                response = conn.getresponse()
                assert response.status == 200
                lines = [
                    json.loads(line)
                    for line in response.read().decode().strip().split("\n")
                ]
            finally:
                conn.close()
        answer_rows = [line for line in lines if "run" in line]
        assert answer_rows
        assert answer_rows[0]["run"]["completed"] >= 1


class TestCliTrace:
    def test_query_trace_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["query", "queries.json", "--trace", "out.json", "--json"]
        )
        assert args.trace == "out.json"

    def test_serve_trace_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--trace", "out.jsonl"]
        )
        assert args.trace == "out.jsonl"

    def test_query_command_writes_trace_and_run_reports(self, tmp_path, capsys):
        from repro.cli import main

        queries = tmp_path / "queries.json"
        queries.write_text(CAMPAIGN_PAYLOAD)
        trace = tmp_path / "trace.json"
        code = main(
            [
                "query",
                str(queries),
                "--json",
                "--jobs",
                "2",
                "--timeout",
                "30",
                "--retries",
                "1",
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["run"]["completed"] >= 1
        document = json.loads(trace.read_text())
        names = {
            e["name"] for e in document["traceEvents"] if e["ph"] == "X"
        }
        assert {"engine.queries", "runtime.supervised", "shard"} <= names
