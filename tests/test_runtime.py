"""Fault-tolerant campaign runtime: chaos self-tests and recovery contracts.

The chaos tests dogfood :mod:`repro.engine.chaos` onto the supervised
runtime and prove each recovery path *by bit-identity*: a run that
survived injected crashes, hangs, worker kills or pool breaks must equal
the clean run exactly — the determinism contract (retries re-execute the
same ``SeedSequence.spawn`` child) is what makes fault tolerance safe to
enable by default.  Checkpoint tests additionally pin byte-identical
``AnswerSet`` JSON across interrupt/resume.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.kernels import (
    merge_tallies,
    monte_carlo_tally_sharded,
    plan_shards,
    run_sharded,
    spawn_shard_generators,
    spawn_shard_sequences,
)
from repro.engine import (
    CampaignCheckpoint,
    ChaosInjectedError,
    ChaosPlan,
    ExecutionPolicy,
    QuerySet,
    ReliabilityEngine,
    RunReport,
    Scenario,
    ShardFault,
    SimulationQuery,
    Supervision,
    chaos_from_fault_plan,
    dispatch,
    run_supervised,
)
from repro.errors import (
    InvalidConfigurationError,
    ReproError,
    ShardExecutionError,
)
from repro.faults.mixture import uniform_fleet
from repro.injection import Adversary, CrashStop, FaultPlan
from repro.protocols.raft import RaftSpec

SPEC = RaftSpec(3)
FLEET = uniform_fleet(3, 0.05)


def _square(payload):
    return payload * payload


def _slow_then_raise(payload):
    kind, delay = payload
    time.sleep(delay)
    if kind == "boom":
        raise ValueError(f"boom after {delay}")
    return kind


def _sleep_forever(payload):
    time.sleep(30.0)
    return payload


# ---------------------------------------------------------------------------
# Bare dispatch (run_sharded fast path)
# ---------------------------------------------------------------------------
class TestDispatch:
    def test_serial_thread_process_agree(self):
        payloads = list(range(7))
        expected = [p * p for p in payloads]
        for jobs, mode in ((1, "serial"), (3, "thread"), (2, "process")):
            assert dispatch(_square, payloads, jobs=jobs, mode=mode) == expected

    def test_run_sharded_delegates_to_dispatch(self):
        assert run_sharded(_square, [2, 3], jobs=2, mode="thread") == [4, 9]

    def test_unknown_mode_rejected(self):
        with pytest.raises(InvalidConfigurationError, match="executor mode"):
            dispatch(_square, [1, 2], jobs=2, mode="greenlet")

    def test_thread_mode_raises_first_exception_not_first_submitted(self):
        # Shard 0 fails *late*, shard 2 fails immediately.  The old
        # pool.map iteration would surface shard 0's error (submission
        # order); the fixed dispatcher surfaces the chronologically first
        # failure so the root cause is never masked.
        payloads = [("boom", 0.4), ("ok", 0.0), ("boom", 0.0)]
        with pytest.raises(ValueError, match="boom after 0.0"):
            dispatch(_slow_then_raise, payloads, jobs=3, mode="thread")


# ---------------------------------------------------------------------------
# Supervision / policy validation (satellite)
# ---------------------------------------------------------------------------
class TestValidation:
    def test_supervision_rejects_bad_values(self):
        for kwargs in (
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"retries": -1},
            {"retries": 1.5},
            {"retries": True},
            {"backoff": -0.1},
            {"on_shard_failure": "explode"},
            {"max_pool_rebuilds": -1},
        ):
            with pytest.raises(InvalidConfigurationError):
                Supervision(**kwargs)

    def test_policy_rejects_non_integer_jobs(self):
        for jobs in (True, 1.5, "4"):
            with pytest.raises(ReproError, match="jobs"):
                ExecutionPolicy(mode="thread", jobs=jobs)
        with pytest.raises(ReproError, match="jobs"):
            ExecutionPolicy.from_jobs(2.5)
        with pytest.raises(ReproError, match="jobs"):
            ExecutionPolicy.from_jobs(True)

    def test_policy_rejects_bad_shard_trials(self):
        for shard_trials in (0, -5, 1.5, True):
            with pytest.raises(ReproError, match="shard_trials"):
                ExecutionPolicy(mode="thread", jobs=2, shard_trials=shard_trials)

    def test_policy_rejects_jobs_below_one(self):
        with pytest.raises(ReproError, match="jobs"):
            ExecutionPolicy(mode="thread", jobs=0)

    def test_policy_supervision_knobs_validated_at_construction(self):
        with pytest.raises(InvalidConfigurationError):
            ExecutionPolicy(timeout=-2.0)
        with pytest.raises(InvalidConfigurationError):
            ExecutionPolicy(on_shard_failure="panic")

    def test_policy_supervision_property(self):
        assert ExecutionPolicy().supervision is None
        assert ExecutionPolicy(mode="thread", jobs=4).supervision is None
        sup = ExecutionPolicy(retries=2, timeout=3.0).supervision
        assert sup == Supervision(retries=2, timeout=3.0)

    def test_from_jobs_builds_supervised_serial_policy(self):
        policy = ExecutionPolicy.from_jobs(None, retries=2)
        assert policy.mode == "serial" and policy.retries == 2
        assert ExecutionPolicy.from_jobs(None) is ExecutionPolicy.from_jobs(0)


# ---------------------------------------------------------------------------
# Supervised execution equals bare execution when nothing fails
# ---------------------------------------------------------------------------
class TestSupervisedCleanRuns:
    @pytest.mark.parametrize(
        "jobs,mode", [(1, "serial"), (3, "thread"), (2, "process")]
    )
    def test_matches_dispatch_and_reports(self, jobs, mode):
        payloads = list(range(5))
        results, report = run_supervised(
            _square,
            payloads,
            jobs=jobs,
            mode=mode,
            supervision=Supervision(retries=2, timeout=20.0),
        )
        assert results == dispatch(_square, payloads, jobs=jobs, mode=mode)
        assert report == RunReport(shards=5, completed=5, attempts=5)
        assert not report.degraded

    def test_supervised_tally_equals_bare_tally(self):
        bare, plan = monte_carlo_tally_sharded(
            SPEC, FLEET, 20_000, 7, jobs=1, shard_trials=5_000, mode="serial"
        )
        supervised, plan2 = monte_carlo_tally_sharded(
            SPEC,
            FLEET,
            20_000,
            7,
            jobs=3,
            shard_trials=5_000,
            mode="thread",
            supervision=Supervision(retries=3, timeout=30.0),
        )
        assert bare == supervised and plan == plan2

    def test_shard_sequences_anchor_generators(self):
        children = spawn_shard_sequences(123, 4)
        rngs = spawn_shard_generators(123, 4)
        for child, rng in zip(children, rngs):
            rebuilt = np.random.default_rng(child)
            assert rebuilt.random() == rng.random()


# ---------------------------------------------------------------------------
# Chaos: retry-success path
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestChaosRetry:
    @pytest.mark.parametrize("jobs,mode", [(1, "serial"), (3, "thread")])
    def test_crashed_shards_retry_bit_identically(self, tmp_path, jobs, mode):
        clean, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 16_000, 11, jobs=1, shard_trials=4_000, mode="serial"
        )
        chaos = ChaosPlan(
            faults=(
                (0, ShardFault("raise", times=1)),
                (3, ShardFault("raise", times=2)),
            ),
            state_dir=str(tmp_path),
        )
        recovered, _ = monte_carlo_tally_sharded(
            SPEC,
            FLEET,
            16_000,
            11,
            jobs=jobs,
            shard_trials=4_000,
            mode=mode,
            supervision=Supervision(retries=2, backoff=0.0),
            chaos=chaos,
        )
        assert recovered == clean

    def test_delay_fault_changes_nothing(self, tmp_path):
        clean, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 8_000, 5, jobs=1, shard_trials=4_000, mode="serial"
        )
        chaos = ChaosPlan(
            faults=((1, ShardFault("delay", times=1, seconds=0.2)),),
            state_dir=str(tmp_path),
        )
        delayed, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 8_000, 5, jobs=2, shard_trials=4_000, mode="thread",
            supervision=Supervision(retries=1), chaos=chaos,
        )
        assert delayed == clean

    def test_exhausted_retries_raise_with_cause(self, tmp_path):
        chaos = ChaosPlan(
            faults=((1, ShardFault("raise", times=-1)),), state_dir=str(tmp_path)
        )
        with pytest.raises(ShardExecutionError, match="shard 1") as excinfo:
            monte_carlo_tally_sharded(
                SPEC, FLEET, 8_000, 5, jobs=2, shard_trials=4_000, mode="thread",
                supervision=Supervision(retries=1, backoff=0.0), chaos=chaos,
            )
        assert isinstance(excinfo.value.__cause__, ChaosInjectedError)

    def test_degrade_merges_surviving_shards(self, tmp_path):
        chaos = ChaosPlan(
            faults=((2, ShardFault("raise", times=-1)),), state_dir=str(tmp_path)
        )
        tally, plan = monte_carlo_tally_sharded(
            SPEC, FLEET, 16_000, 11, jobs=2, shard_trials=4_000, mode="thread",
            supervision=Supervision(
                retries=1, backoff=0.0, on_shard_failure="degrade"
            ),
            chaos=chaos,
        )
        assert plan.num_shards == 4
        assert tally.trials == 12_000  # shard 2's 4k trials dropped


# ---------------------------------------------------------------------------
# Chaos: timeout and worker-loss paths
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestChaosTimeoutAndWorkerLoss:
    def test_thread_timeout_abandons_and_retries(self, tmp_path):
        clean, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 8_000, 3, jobs=1, shard_trials=4_000, mode="serial"
        )
        # Keep the hang short-ish: an abandoned thread attempt runs to the
        # end of its sleep, and the interpreter joins leftover pool threads
        # at exit.
        chaos = ChaosPlan(
            faults=((0, ShardFault("hang", times=1, seconds=5.0)),),
            state_dir=str(tmp_path),
        )
        recovered, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 8_000, 3, jobs=2, shard_trials=4_000, mode="thread",
            supervision=Supervision(retries=1, timeout=0.5, backoff=0.0),
            chaos=chaos,
        )
        assert recovered == clean

    def test_process_timeout_terminates_pool_and_retries(self, tmp_path):
        clean, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 8_000, 3, jobs=1, shard_trials=4_000, mode="serial"
        )
        chaos = ChaosPlan(
            faults=((1, ShardFault("hang", times=1, seconds=30.0)),),
            state_dir=str(tmp_path),
        )
        start = time.monotonic()
        recovered, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 8_000, 3, jobs=2, shard_trials=4_000, mode="process",
            supervision=Supervision(retries=1, timeout=1.0, backoff=0.0),
            chaos=chaos,
        )
        assert recovered == clean
        assert time.monotonic() - start < 25.0  # did not wait out the hang

    def test_worker_kill_requeues_without_burning_retries(self, tmp_path):
        clean, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 8_000, 3, jobs=1, shard_trials=4_000, mode="serial"
        )
        chaos = ChaosPlan(
            faults=((0, ShardFault("kill", times=1)),), state_dir=str(tmp_path)
        )
        # retries=0: recovery must come from the worker-loss requeue path,
        # which owes no retry budget — the chaos plan kills only the first
        # attempt, so the requeued shard succeeds on the rebuilt pool.
        recovered, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 8_000, 3, jobs=2, shard_trials=4_000, mode="process",
            supervision=Supervision(retries=0), chaos=chaos,
        )
        assert recovered == clean

    def test_poisoned_shard_cannot_rebuild_forever(self, tmp_path):
        chaos = ChaosPlan(
            faults=((0, ShardFault("kill", times=-1)),), state_dir=str(tmp_path)
        )
        results, report = run_supervised(
            _square,
            [1, 2, 3],
            jobs=2,
            mode="process",
            supervision=Supervision(
                retries=0, on_shard_failure="degrade", max_pool_rebuilds=0
            ),
            chaos=chaos,
        )
        # The poisoned shard is dropped as a worker loss instead of
        # rebuilding the pool forever.  Innocent shards in flight at the
        # over-cap break are dropped with it (the loss is unattributable);
        # whatever completed must be correct.
        assert 0 in report.dropped
        assert any(kind == "worker-loss" for _, kind in report.failures)
        assert report.pool_rebuilds >= 1
        for index, payload in ((1, 2), (2, 3)):
            if index not in report.dropped:
                assert results[index] == payload * payload
        assert report.completed + len(report.dropped) == 3


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------
class TestCampaignCheckpoint:
    def _checkpoint(self, tmp_path, **kwargs):
        defaults = dict(key="k1", shards=4)
        defaults.update(kwargs)
        return CampaignCheckpoint(tmp_path / "journal.jsonl", **defaults)

    def test_round_trip(self, tmp_path):
        journal = self._checkpoint(tmp_path)
        assert journal.load() == {}
        journal.record(1, [1, 2])
        journal.record(3, [3])
        fresh = self._checkpoint(tmp_path)
        assert fresh.load() == {1: [1, 2], 3: [3]}

    def test_mismatched_header_discards(self, tmp_path):
        journal = self._checkpoint(tmp_path)
        journal.record(0, "a")
        other = self._checkpoint(tmp_path, key="k2")
        assert other.load() == {}
        other.record(2, "b")  # rewrites the journal under the new key
        assert self._checkpoint(tmp_path, key="k2").load() == {2: "b"}
        assert self._checkpoint(tmp_path).load() == {}

    def test_different_shard_plan_discards(self, tmp_path):
        journal = self._checkpoint(tmp_path)
        journal.record(0, "a")
        assert self._checkpoint(tmp_path, shards=8).load() == {}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        journal = self._checkpoint(tmp_path)
        journal.record(0, "a")
        journal.record(1, "b")
        with journal.path.open("a") as handle:
            handle.write('{"shard": 2, "val')  # interrupted mid-write
        assert self._checkpoint(tmp_path).load() == {0: "a", 1: "b"}

    def test_out_of_range_shards_ignored(self, tmp_path):
        journal = self._checkpoint(tmp_path)
        journal.record(0, "a")
        journal.record(99, "zz")
        assert self._checkpoint(tmp_path).load() == {0: "a"}

    def test_digest_is_stable_and_filename_safe(self):
        key = ("simulation", "raft", 3, 42)
        digest = CampaignCheckpoint.digest(key)
        assert digest == CampaignCheckpoint.digest(key)
        assert digest != CampaignCheckpoint.digest(key + ("x",))
        assert len(digest) == 24 and digest.isalnum()

    def test_supervised_run_restores_from_journal(self, tmp_path):
        journal = self._checkpoint(tmp_path)
        journal.record(1, 99)
        results, report = run_supervised(
            _square,
            [5, 6, 7, 8],
            jobs=1,
            mode="serial",
            checkpoint=self._checkpoint(tmp_path),
        )
        assert results == [25, 99, 49, 64]  # shard 1 came from the journal
        assert report.restored == 1 and report.attempts == 3


# ---------------------------------------------------------------------------
# Engine-level campaigns: degrade, resume, byte-identical JSON
# ---------------------------------------------------------------------------
def _campaign_queries():
    scenario = Scenario(
        spec=RaftSpec(3), fleet=uniform_fleet(3, 0.2), seed=7, label="camp"
    )
    return QuerySet(
        [SimulationQuery(scenario=scenario, replicas=12, duration=8.0)]
    )


def _answers_json(answers) -> str:
    return json.dumps([answer.to_dict() for answer in answers], sort_keys=True)


@pytest.mark.chaos
class TestEngineCampaignRecovery:
    BASE_POLICY = ExecutionPolicy(mode="thread", jobs=2, shard_trials=3)

    def _baseline_json(self):
        answers = ReliabilityEngine().run(_campaign_queries(), policy=self.BASE_POLICY)
        return _answers_json(answers)

    def test_chaos_recovered_campaign_is_byte_identical(self, tmp_path):
        baseline = self._baseline_json()
        chaos = ChaosPlan(
            faults=(
                (0, ShardFault("raise", times=1)),
                (2, ShardFault("raise", times=1)),
            ),
            state_dir=str(tmp_path),
        )
        policy = ExecutionPolicy(
            mode="thread", jobs=2, shard_trials=3, retries=2, backoff=0.0,
            chaos=chaos,
        )
        recovered = ReliabilityEngine().run(_campaign_queries(), policy=policy)
        assert _answers_json(recovered) == baseline

    def test_interrupted_campaign_resumes_byte_identically(self, tmp_path):
        baseline = self._baseline_json()
        state = tmp_path / "chaos"
        journals = tmp_path / "journals"
        # First run: shard 1 is permanently poisoned; degrade keeps the
        # run alive and journals the 3 completed shards.
        chaos = ChaosPlan(
            faults=((1, ShardFault("raise", times=-1)),), state_dir=str(state)
        )
        interrupted_policy = ExecutionPolicy(
            mode="thread", jobs=2, shard_trials=3, retries=1, backoff=0.0,
            on_shard_failure="degrade", checkpoint_dir=str(journals),
            chaos=chaos,
        )
        partial = ReliabilityEngine().run(
            _campaign_queries(), policy=interrupted_policy
        )
        assert partial[0].provenance.degraded
        assert partial[0].provenance.dropped_shards == (1,)
        assert partial[0].provenance.effective_trials == 9
        assert partial[0].value.replicas == 9
        # Second run: no chaos; only the missing shard re-runs, and the
        # answer JSON is byte-identical to the never-interrupted run.
        resumed_policy = ExecutionPolicy(
            mode="thread", jobs=2, shard_trials=3, checkpoint_dir=str(journals)
        )
        resumed = ReliabilityEngine().run(_campaign_queries(), policy=resumed_policy)
        assert _answers_json(resumed) == baseline
        assert not resumed[0].provenance.degraded

    def test_degraded_answers_never_enter_the_memo(self, tmp_path):
        chaos = ChaosPlan(
            faults=((0, ShardFault("raise", times=-1)),), state_dir=str(tmp_path)
        )
        engine = ReliabilityEngine()
        degraded = engine.run(
            _campaign_queries(),
            policy=ExecutionPolicy(
                mode="thread", jobs=2, shard_trials=3, retries=0,
                on_shard_failure="degrade", chaos=chaos,
            ),
        )
        assert degraded[0].provenance.degraded
        assert "degraded[1]" in degraded[0].provenance.describe()
        assert degraded[0].to_dict()["degraded"] is True
        # A rerun on the same engine must recompute, not serve the partial
        # answer from cache.
        clean = engine.run(_campaign_queries(), policy=self.BASE_POLICY)
        assert not clean[0].provenance.cache_hit
        assert not clean[0].provenance.degraded
        assert "degraded" not in clean[0].to_dict()

    def test_complete_supervised_campaign_is_cached(self):
        engine = ReliabilityEngine()
        first = engine.run(
            _campaign_queries(),
            policy=ExecutionPolicy(mode="thread", jobs=2, shard_trials=3, retries=2),
        )
        assert not first[0].provenance.cache_hit
        second = engine.run(_campaign_queries(), policy=self.BASE_POLICY)
        assert second[0].provenance.cache_hit


# ---------------------------------------------------------------------------
# Dogfooding: a declarative FaultPlan attacks the runtime itself
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestChaosFromFaultPlan:
    def test_outages_map_to_shard_faults(self, tmp_path):
        plan = FaultPlan(
            events=(
                CrashStop(node=1, at=1.0, recover_at=2.0),
                CrashStop(node=3, at=1.0),
            ),
            adversary=Adversary(nodes=(2,)),
            sample_faults=False,
        )
        chaos = chaos_from_fault_plan(
            plan, shards=4, state_dir=str(tmp_path), hang_seconds=0.1
        )
        by_shard = dict(chaos.faults)
        assert by_shard[1].kind == "raise" and by_shard[1].times == 1
        assert by_shard[3].kind == "raise" and by_shard[3].times == -1
        assert by_shard[2].kind == "hang"
        assert 0 not in by_shard

    def test_fault_plan_driven_run_recovers_bit_identically(self, tmp_path):
        clean, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 16_000, 11, jobs=1, shard_trials=4_000, mode="serial"
        )
        plan = FaultPlan(
            events=(CrashStop(node=2, at=1.0, recover_at=2.0),),
            sample_faults=False,
        )
        chaos = chaos_from_fault_plan(plan, shards=4, state_dir=str(tmp_path))
        recovered, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 16_000, 11, jobs=2, shard_trials=4_000, mode="thread",
            supervision=Supervision(retries=1, backoff=0.0), chaos=chaos,
        )
        assert recovered == clean

    def test_shards_must_be_positive(self, tmp_path):
        with pytest.raises(InvalidConfigurationError):
            chaos_from_fault_plan(None, shards=0, state_dir=str(tmp_path))


# ---------------------------------------------------------------------------
# Chaos plan validation
# ---------------------------------------------------------------------------
class TestChaosValidation:
    def test_bad_faults_rejected(self, tmp_path):
        with pytest.raises(InvalidConfigurationError):
            ShardFault("melt")
        with pytest.raises(InvalidConfigurationError):
            ShardFault("raise", times=0)
        with pytest.raises(InvalidConfigurationError):
            ShardFault("delay", seconds=-1.0)
        with pytest.raises(InvalidConfigurationError):
            ChaosPlan(
                faults=(
                    (1, ShardFault("raise")),
                    (1, ShardFault("kill")),
                ),
                state_dir=str(tmp_path),
            )
        with pytest.raises(InvalidConfigurationError):
            ChaosPlan(faults=((-1, ShardFault("raise")),), state_dir=str(tmp_path))

    def test_kill_downgrades_outside_process_pools(self, tmp_path):
        chaos = ChaosPlan(
            faults=((0, ShardFault("kill", times=1)),), state_dir=str(tmp_path)
        )
        worker = chaos.bind(_square, "thread")
        with pytest.raises(ChaosInjectedError):
            worker((0, 5))
        assert worker((0, 5)) == 25  # second attempt passes through

    def test_attempt_counting_is_per_shard(self, tmp_path):
        chaos = ChaosPlan(
            faults=((0, ShardFault("raise", times=1)),), state_dir=str(tmp_path)
        )
        worker = chaos.bind(_square, "serial")
        assert worker((1, 3)) == 9  # unfaulted shard unaffected
        with pytest.raises(ChaosInjectedError):
            worker((0, 3))
        assert worker((0, 3)) == 9


# ---------------------------------------------------------------------------
# Hypothesis: retry determinism over arbitrary failing subsets (satellite)
# ---------------------------------------------------------------------------
class TestRetryDeterminismProperty:
    CLEAN, _ = monte_carlo_tally_sharded(
        SPEC, FLEET, 8_000, 29, jobs=1, shard_trials=2_000, mode="serial"
    )

    @pytest.mark.chaos
    @settings(max_examples=10, deadline=None)
    @given(failing=st.sets(st.integers(min_value=0, max_value=3)))
    def test_any_failing_subset_is_bit_identical_thread(self, tmp_path_factory, failing):
        state = tmp_path_factory.mktemp("chaos")
        chaos = ChaosPlan(
            faults=tuple(
                (index, ShardFault("raise", times=1)) for index in sorted(failing)
            ),
            state_dir=str(state),
        )
        tally, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 8_000, 29, jobs=2, shard_trials=2_000, mode="thread",
            supervision=Supervision(retries=1, backoff=0.0),
            chaos=chaos if failing else None,
        )
        assert tally == self.CLEAN

    @pytest.mark.chaos
    @settings(max_examples=4, deadline=None)
    @given(failing=st.sets(st.integers(min_value=0, max_value=3), min_size=1))
    def test_any_failing_subset_is_bit_identical_process(
        self, tmp_path_factory, failing
    ):
        state = tmp_path_factory.mktemp("chaos")
        chaos = ChaosPlan(
            faults=tuple(
                (index, ShardFault("raise", times=1)) for index in sorted(failing)
            ),
            state_dir=str(state),
        )
        tally, _ = monte_carlo_tally_sharded(
            SPEC, FLEET, 8_000, 29, jobs=2, shard_trials=2_000, mode="process",
            supervision=Supervision(retries=1, backoff=0.0), chaos=chaos,
        )
        assert tally == self.CLEAN

    @pytest.mark.chaos
    @settings(max_examples=5, deadline=None)
    @given(failing=st.sets(st.integers(min_value=0, max_value=3), min_size=1))
    def test_simulation_answer_survives_failing_subsets(
        self, tmp_path_factory, failing
    ):
        baseline = ReliabilityEngine().run(
            _campaign_queries(),
            policy=ExecutionPolicy(mode="thread", jobs=2, shard_trials=3),
        )
        state = tmp_path_factory.mktemp("chaos")
        chaos = ChaosPlan(
            faults=tuple(
                (index, ShardFault("raise", times=1)) for index in sorted(failing)
            ),
            state_dir=str(state),
        )
        recovered = ReliabilityEngine().run(
            _campaign_queries(),
            policy=ExecutionPolicy(
                mode="thread", jobs=2, shard_trials=3, retries=1, backoff=0.0,
                chaos=chaos,
            ),
        )
        assert recovered[0].value == baseline[0].value
        assert _answers_json(recovered) == _answers_json(baseline)


# ---------------------------------------------------------------------------
# Misc runtime behaviour
# ---------------------------------------------------------------------------
class TestRuntimeMisc:
    def test_retry_report_lists_retried_shards(self, tmp_path):
        chaos = ChaosPlan(
            faults=((2, ShardFault("raise", times=1)),), state_dir=str(tmp_path)
        )
        results, report = run_supervised(
            _square,
            [1, 2, 3, 4],
            jobs=1,
            mode="serial",
            supervision=Supervision(retries=1, backoff=0.0),
            chaos=chaos,
        )
        assert results == [1, 4, 9, 16]
        assert report.retried == (2,)
        assert report.attempts == 5

    def test_plan_shards_still_validates(self):
        with pytest.raises(InvalidConfigurationError):
            plan_shards(0)
        with pytest.raises(InvalidConfigurationError):
            plan_shards(100, -1)

    def test_merge_skips_no_tallies(self):
        with pytest.raises(InvalidConfigurationError):
            merge_tallies([])
