"""Tests for the synthetic telemetry substrate and ingest pipeline."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError
from repro.telemetry.datasets import (
    HARDWARE_CATALOG,
    model_by_name,
    rollout_risk_curve,
    spot_eviction_curve,
)
from repro.telemetry.fleet import generate_fleet_telemetry
from repro.telemetry.ingest import (
    empirical_hazard,
    fit_model_curves,
    fleet_from_telemetry,
)


@pytest.fixture(scope="module")
def telemetry():
    return generate_fleet_telemetry(machines_per_model=150, seed=7)


class TestCatalog:
    def test_lookup(self):
        model = model_by_name("SRV-STD")
        assert model.afr == pytest.approx(0.04)
        assert model.byzantine_afr == pytest.approx(0.0001)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            model_by_name("nope")

    def test_afr_spread_matches_literature(self):
        afrs = [m.afr for m in HARDWARE_CATALOG]
        assert min(afrs) < 0.01
        assert max(afrs) >= 0.08

    def test_crash_curve_useful_life_near_nameplate(self):
        model = model_by_name("HMS-D14")
        curve = model.crash_curve()
        # Year 2 AFR should be within a factor of ~3 of the nameplate
        # (wear-out and infancy contribute at the edges).
        afr = curve.failure_probability(8766.0, 2 * 8766.0)
        assert 0.5 * model.afr < afr < 4 * model.afr

    def test_spot_curve_default_eight_percent_window(self):
        curve = spot_eviction_curve()
        assert curve.failure_probability(0, 1000.0) == pytest.approx(0.095, abs=0.02)

    def test_rollout_risk_scales_hazard(self):
        base = model_by_name("SRV-STD").crash_curve()
        spiked = rollout_risk_curve(base, spike_factor=50.0)
        assert spiked.hazard(10_000.0) == pytest.approx(50.0 * base.hazard(10_000.0))


class TestGenerator:
    def test_every_machine_has_a_record(self, telemetry):
        assert len(telemetry.records) == 150 * len(HARDWARE_CATALOG)

    def test_lifetimes_within_window(self, telemetry):
        assert all(0.0 <= r.lifetime_hours <= telemetry.window_hours for r in telemetry.records)

    def test_censored_records_at_window_end(self, telemetry):
        alive = [r for r in telemetry.records if not r.failed]
        assert alive
        assert all(r.lifetime_hours == telemetry.window_hours for r in alive)

    def test_flakier_models_fail_more(self, telemetry):
        assert telemetry.observed_afr("ECO-R2") > telemetry.observed_afr("HMS-D14")

    def test_shock_casualties_recorded(self):
        telemetry = generate_fleet_telemetry(
            machines_per_model=80,
            rollout_probability_per_month=1.0,
            rollout_lethality=0.05,
            seed=11,
        )
        assert telemetry.shocks
        rollout_deaths = [r for r in telemetry.records if r.cause.startswith("rollout")]
        assert rollout_deaths

    def test_deterministic_under_seed(self):
        a = generate_fleet_telemetry(machines_per_model=20, seed=3)
        b = generate_fleet_telemetry(machines_per_model=20, seed=3)
        assert [(r.machine_id, r.lifetime_hours) for r in a.records] == [
            (r.machine_id, r.lifetime_hours) for r in b.records
        ]

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            generate_fleet_telemetry(machines_per_model=0)
        with pytest.raises(InvalidConfigurationError):
            generate_fleet_telemetry(rollout_lethality=2.0)


class TestIngest:
    def test_empirical_hazard_flat_for_memoryless_data(self):
        from repro.faults.curves import ConstantHazard
        import numpy as np

        rng = np.random.default_rng(0)
        true = ConstantHazard(1e-3)
        durations, observed = [], []
        for _ in range(4000):
            t = true.sample_failure_time(rng, horizon=2000.0)
            failed = np.isfinite(t) and t < 2000.0
            durations.append(float(t) if failed else 2000.0)
            observed.append(bool(failed))
        curve = empirical_hazard(durations, observed, n_bins=6)
        mid_hazard = curve.hazard(1000.0)
        assert mid_hazard == pytest.approx(1e-3, rel=0.3)

    def test_fit_model_curves_covers_all_models(self, telemetry):
        fits = fit_model_curves(telemetry)
        assert set(fits) == set(telemetry.models_present())

    def test_fitted_curves_rank_models_correctly(self, telemetry):
        fits = fit_model_curves(telemetry)
        window = (8766.0, 8766.0 + 720.0)
        p_good = fits["HMS-D14"].curve.failure_probability(*window)
        p_bad = fits["ECO-R2"].curve.failure_probability(*window)
        assert p_bad > p_good

    def test_fleet_from_telemetry_end_to_end(self, telemetry):
        fleet = fleet_from_telemetry(telemetry, [("SRV-STD", 3), ("ECO-R2", 2)])
        assert fleet.n == 5
        assert fleet[0].label == "SRV-STD"
        assert 0.0 < fleet[0].p_fail < 0.2
        assert fleet[3].p_fail > fleet[0].p_fail

    def test_unknown_composition_model(self, telemetry):
        with pytest.raises(InvalidConfigurationError):
            fleet_from_telemetry(telemetry, [("quantum-drive", 3)])

    def test_empirical_hazard_validation(self):
        with pytest.raises(InvalidConfigurationError):
            empirical_hazard([], [])
        with pytest.raises(InvalidConfigurationError):
            empirical_hazard([1.0], [True], n_bins=1)
