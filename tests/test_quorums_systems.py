"""Unit tests for threshold, weighted and grid quorum systems."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError
from repro.quorums.flexible import FlexibleQuorumPair, GridQuorums
from repro.quorums.majority import MajorityQuorums, ThresholdQuorums
from repro.quorums.weighted import WeightedQuorums, reliability_weights


class TestThreshold:
    def test_membership(self):
        system = ThresholdQuorums(5, 3)
        assert system.is_quorum(frozenset({0, 1, 2}))
        assert not system.is_quorum(frozenset({0, 1}))

    def test_minimal_quorums_count(self):
        import math

        system = ThresholdQuorums(6, 4)
        quorums = list(system.minimal_quorums())
        assert len(quorums) == math.comb(6, 4)
        assert all(len(q) == 4 for q in quorums)

    def test_availability_closed_form(self):
        from scipy import stats

        system = ThresholdQuorums(7, 4)
        availability = system.availability([0.1] * 7)
        assert availability == pytest.approx(float(stats.binom.cdf(3, 7, 0.1)))

    def test_availability_heterogeneous_matches_generic(self):
        system = ThresholdQuorums(5, 3)
        probs = [0.05, 0.1, 0.2, 0.3, 0.01]
        closed = system.availability(probs)
        generic = super(ThresholdQuorums, system).availability(probs)
        assert closed == pytest.approx(generic)

    def test_intersection_rule(self):
        a = ThresholdQuorums(10, 6)
        b = ThresholdQuorums(10, 5)
        assert a.intersects_with(b)
        assert not ThresholdQuorums(10, 5).intersects_with(ThresholdQuorums(10, 5))

    def test_majority_is_self_intersecting(self):
        for n in (3, 4, 5, 8):
            m = MajorityQuorums(n)
            assert m.intersects_with(m)

    def test_invalid_threshold(self):
        with pytest.raises(InvalidConfigurationError):
            ThresholdQuorums(5, 0)
        with pytest.raises(InvalidConfigurationError):
            ThresholdQuorums(5, 6)

    def test_validate_universe(self):
        with pytest.raises(InvalidConfigurationError):
            ThresholdQuorums(3, 2).is_quorum(frozenset({5}))


class TestWeighted:
    def test_membership_by_weight(self):
        system = WeightedQuorums([5.0, 1.0, 1.0, 1.0], threshold=5.0)
        assert system.is_quorum(frozenset({0}))
        assert not system.is_quorum(frozenset({1, 2, 3}))

    def test_majority_of_weight_intersects(self):
        weights = [3.0, 2.0, 2.0, 1.0]
        system = WeightedQuorums.majority_of_weight(weights)
        assert system.guaranteed_intersection_with(system)

    def test_minimal_quorums_are_minimal(self):
        system = WeightedQuorums([2.0, 2.0, 1.0, 1.0], threshold=3.0)
        quorums = list(system.minimal_quorums())
        for quorum in quorums:
            for member in quorum:
                assert not system.is_quorum(quorum - {member})

    def test_equal_weights_match_threshold_system(self):
        weighted = WeightedQuorums([1.0] * 5, threshold=3.0)
        threshold = ThresholdQuorums(5, 3)
        assert set(weighted.minimal_quorums()) == set(threshold.minimal_quorums())

    def test_reliability_weights_ordering(self):
        weights = reliability_weights([0.01, 0.08, 0.5])
        assert weights[0] > weights[1] > weights[2]

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            WeightedQuorums([-1.0, 2.0], threshold=1.0)
        with pytest.raises(InvalidConfigurationError):
            WeightedQuorums([1.0, 1.0], threshold=3.0)


class TestGrid:
    def test_row_plus_column_is_quorum(self):
        grid = GridQuorums(3, 3)
        quorum = grid.row_members(0) | grid.col_members(1)
        assert grid.is_quorum(quorum)

    def test_row_alone_is_not_quorum(self):
        grid = GridQuorums(3, 3)
        assert not grid.is_quorum(grid.row_members(0))

    def test_all_pairs_intersect(self):
        grid = GridQuorums(3, 3)
        quorums = list(grid.minimal_quorums())
        assert all(q1 & q2 for q1 in quorums for q2 in quorums)

    def test_quorum_size_sublinear(self):
        grid = GridQuorums(4, 4)
        assert grid.min_quorum_cardinality() == 7  # 4 + 4 - 1 vs n = 16

    def test_availability_generic_path(self):
        grid = GridQuorums(2, 2)
        availability = grid.availability([0.0] * 4)
        assert availability == pytest.approx(1.0)


class TestFlexiblePair:
    def test_structural_safety_rule(self):
        assert FlexibleQuorumPair(5, 2, 4).is_safe_configuration
        assert not FlexibleQuorumPair(5, 2, 3).is_safe_configuration  # 2+3 = 5
        assert not FlexibleQuorumPair(5, 4, 2).is_safe_configuration  # 2*2 < 5

    def test_all_valid_pairs_are_safe(self):
        pairs = list(FlexibleQuorumPair.all_valid_pairs(7))
        assert pairs
        assert all(p.is_safe_configuration for p in pairs)
        assert any(p.q_per < 4 for p in pairs)  # sub-majority persistence exists

    def test_liveness_probability_uses_larger_quorum(self):
        pair = FlexibleQuorumPair(5, 2, 4)
        from scipy import stats

        expected = float(stats.binom.cdf(1, 5, 0.1))  # need 4 correct
        assert pair.liveness_probability((0.1,) * 5) == pytest.approx(expected)

    def test_best_case_load_of_majority(self):
        system = MajorityQuorums(5)
        load = system.best_case_load()
        assert load == pytest.approx(3 / 5)
