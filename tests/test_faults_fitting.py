"""Unit tests for fault-curve fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FittingError, InvalidConfigurationError
from repro.faults.curves import ConstantHazard, WeibullCurve
from repro.faults.fitting import (
    fit_constant_hazard,
    fit_piecewise_hazard,
    fit_weibull,
    select_best_fit,
)


def _censored_sample(curve, n, horizon, seed):
    rng = np.random.default_rng(seed)
    durations, observed = [], []
    for _ in range(n):
        t = curve.sample_failure_time(rng, horizon=horizon)
        if np.isfinite(t) and t < horizon:
            durations.append(t)
            observed.append(True)
        else:
            durations.append(horizon)
            observed.append(False)
    return durations, observed


class TestConstantFit:
    def test_exposure_ratio(self):
        fit = fit_constant_hazard([100.0, 200.0, 300.0], [True, False, True])
        assert fit.curve.rate_per_hour == pytest.approx(2.0 / 600.0)

    def test_recovers_true_rate(self):
        true = ConstantHazard(1e-3)
        durations, observed = _censored_sample(true, 2000, 3000.0, seed=0)
        fit = fit_constant_hazard(durations, observed)
        assert fit.curve.rate_per_hour == pytest.approx(1e-3, rel=0.1)

    def test_zero_failures_gives_zero_rate(self):
        fit = fit_constant_hazard([10.0, 20.0], [False, False])
        assert fit.curve.rate_per_hour == 0.0

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            fit_constant_hazard([], [])
        with pytest.raises(InvalidConfigurationError):
            fit_constant_hazard([1.0], [True, False])
        with pytest.raises(InvalidConfigurationError):
            fit_constant_hazard([-1.0], [True])


class TestWeibullFit:
    def test_recovers_shape_and_scale(self):
        true = WeibullCurve(shape=2.5, scale_hours=1_000.0)
        durations, observed = _censored_sample(true, 3000, 5_000.0, seed=1)
        fit = fit_weibull(durations, observed)
        assert fit.curve.shape == pytest.approx(2.5, rel=0.15)
        assert fit.curve.scale_hours == pytest.approx(1_000.0, rel=0.1)

    def test_zero_failures_rejected(self):
        with pytest.raises(FittingError):
            fit_weibull([10.0, 10.0], [False, False])


class TestPiecewiseFit:
    def test_recovers_step_change(self):
        rng = np.random.default_rng(2)
        from repro.faults.curves import PiecewiseConstantCurve

        true = PiecewiseConstantCurve((0.0, 500.0), (5e-3, 5e-4))
        durations, observed = [], []
        for _ in range(3000):
            t = true.sample_failure_time(rng, horizon=2_000.0)
            failed = np.isfinite(t) and t < 2_000.0
            durations.append(t if failed else 2_000.0)
            observed.append(bool(failed))
        fit = fit_piecewise_hazard(durations, observed, (0.0, 500.0))
        assert fit.curve.rates[0] == pytest.approx(5e-3, rel=0.2)
        assert fit.curve.rates[1] == pytest.approx(5e-4, rel=0.3)

    def test_bad_breakpoints(self):
        with pytest.raises(InvalidConfigurationError):
            fit_piecewise_hazard([1.0], [True], (1.0, 2.0))


class TestModelSelection:
    def test_prefers_weibull_for_aging_data(self):
        true = WeibullCurve(shape=3.0, scale_hours=800.0)
        durations, observed = _censored_sample(true, 2000, 2_500.0, seed=3)
        best = select_best_fit(durations, observed)
        assert best.model_name == "weibull"

    def test_prefers_constant_for_memoryless_data(self):
        true = ConstantHazard(1e-3)
        durations, observed = _censored_sample(true, 2000, 2_000.0, seed=4)
        best = select_best_fit(durations, observed)
        # Weibull nests constant; AIC's parameter penalty should favour
        # the 1-parameter model on truly memoryless data.
        assert best.model_name in ("constant", "weibull")
        if best.model_name == "weibull":
            assert best.curve.shape == pytest.approx(1.0, abs=0.15)

    def test_survives_zero_failures(self):
        best = select_best_fit([100.0] * 5, [False] * 5)
        assert best.model_name == "constant"

    def test_aic_ordering(self):
        durations, observed = _censored_sample(ConstantHazard(2e-3), 500, 1_000.0, seed=5)
        constant = fit_constant_hazard(durations, observed)
        weibull = fit_weibull(durations, observed)
        # The 2-parameter model can never have much higher likelihood loss.
        assert weibull.log_likelihood >= constant.log_likelihood - 1e-6
