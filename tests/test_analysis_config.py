"""Unit tests for failure configurations."""

from __future__ import annotations

import pytest

from repro.analysis.config import FailureConfig, FaultKind, config_probability
from repro.errors import InvalidConfigurationError


class TestConstruction:
    def test_all_correct(self):
        config = FailureConfig.all_correct(4)
        assert config.num_correct == 4
        assert config.num_failed == 0

    def test_from_failed_indices(self):
        config = FailureConfig.from_failed_indices(5, [1, 3])
        assert config.crashed_indices == {1, 3}
        assert config.correct_indices == {0, 2, 4}

    def test_from_failed_indices_byzantine(self):
        config = FailureConfig.from_failed_indices(3, [0], kind=FaultKind.BYZANTINE)
        assert config.byzantine_indices == {0}
        assert config.num_crashed == 0

    def test_from_failed_rejects_correct_kind(self):
        with pytest.raises(InvalidConfigurationError):
            FailureConfig.from_failed_indices(3, [0], kind=FaultKind.CORRECT)

    def test_from_failed_rejects_bad_index(self):
        with pytest.raises(InvalidConfigurationError):
            FailureConfig.from_failed_indices(3, [7])

    def test_from_counts(self):
        config = FailureConfig.from_counts(2, 1, 1)
        assert config.n == 4
        assert config.num_correct == 2
        assert config.num_crashed == 1
        assert config.num_byzantine == 1

    def test_from_counts_negative_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            FailureConfig.from_counts(-1, 0, 0)


class TestViews:
    def test_failed_union(self):
        config = FailureConfig(
            (FaultKind.CORRECT, FaultKind.CRASH, FaultKind.BYZANTINE)
        )
        assert config.failed_indices == {1, 2}
        assert config.num_failed == 2

    def test_describe(self):
        config = FailureConfig(
            (FaultKind.CORRECT, FaultKind.CRASH, FaultKind.BYZANTINE)
        )
        assert config.describe() == ".XB"

    def test_with_kind(self):
        config = FailureConfig.all_correct(3).with_kind(1, FaultKind.CRASH)
        assert config.crashed_indices == {1}

    def test_hashable_and_equal(self):
        a = FailureConfig.from_failed_indices(3, [1])
        b = FailureConfig.from_failed_indices(3, [1])
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_and_indexing(self):
        config = FailureConfig.from_counts(1, 1, 0)
        assert list(config) == [FaultKind.CORRECT, FaultKind.CRASH]
        assert config[0] is FaultKind.CORRECT


class TestProbability:
    def test_independent_product(self):
        config = FailureConfig((FaultKind.CORRECT, FaultKind.CRASH, FaultKind.BYZANTINE))
        p = config_probability(config, [0.1, 0.2, 0.1], [0.05, 0.0, 0.3])
        assert p == pytest.approx((1 - 0.15) * 0.2 * 0.3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            config_probability(FailureConfig.all_correct(2), [0.1], [0.0])

    def test_all_correct_probability(self):
        config = FailureConfig.all_correct(3)
        p = config_probability(config, [0.1] * 3, [0.0] * 3)
        assert p == pytest.approx(0.9**3)
