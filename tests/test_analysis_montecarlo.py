"""Unit tests for the Monte-Carlo estimator."""

from __future__ import annotations

import pytest

from repro.analysis.counting import counting_reliability
from repro.analysis.montecarlo import (
    monte_carlo_correlated,
    monte_carlo_reliability,
    required_trials_for_ci_width,
    sample_configuration,
    wilson_interval,
)
from repro.analysis.config import FaultKind
from repro.errors import InvalidConfigurationError
from repro.faults.correlation import CommonShockModel, rollout_shock
from repro.faults.mixture import uniform_fleet
from repro._rng import as_generator
from repro.protocols.raft import RaftSpec


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high

    def test_zero_successes_nonzero_upper(self):
        low, high = wilson_interval(0, 1000)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0.0 < high < 0.01

    def test_all_successes(self):
        low, high = wilson_interval(1000, 1000)
        assert high == 1.0
        assert 0.99 < low < 1.0

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            wilson_interval(5, 0)
        with pytest.raises(InvalidConfigurationError):
            wilson_interval(11, 10)

    def test_narrows_with_trials(self):
        _, high_small = wilson_interval(5, 10)
        low_small, _ = wilson_interval(5, 10)
        low_big, high_big = wilson_interval(500, 1000)
        assert (high_big - low_big) < (high_small - low_small)


class TestSampling:
    def test_sample_configuration_deterministic(self, byz_mixture_fleet):
        a = sample_configuration(byz_mixture_fleet, as_generator(9))
        b = sample_configuration(byz_mixture_fleet, as_generator(9))
        assert a == b

    def test_sample_marginals(self):
        fleet = uniform_fleet(4, 0.3, byzantine_fraction=0.5)
        rng = as_generator(0)
        crash = byz = 0
        trials = 20_000
        for _ in range(trials):
            config = sample_configuration(fleet, rng)
            crash += config.num_crashed
            byz += config.num_byzantine
        assert crash / (4 * trials) == pytest.approx(0.15, abs=0.01)
        assert byz / (4 * trials) == pytest.approx(0.15, abs=0.01)


class TestMonteCarloReliability:
    def test_ci_covers_exact_value(self, mixed_fleet):
        spec = RaftSpec(7)
        exact = counting_reliability(spec, mixed_fleet)
        mc = monte_carlo_reliability(spec, mixed_fleet, trials=30_000, seed=1)
        assert mc.safe_and_live.ci_low <= exact.safe_and_live.value <= mc.safe_and_live.ci_high

    def test_seeded_reproducibility(self, small_cft_fleet):
        spec = RaftSpec(3)
        a = monte_carlo_reliability(spec, small_cft_fleet, trials=5_000, seed=7)
        b = monte_carlo_reliability(spec, small_cft_fleet, trials=5_000, seed=7)
        assert a.safe_and_live.value == b.safe_and_live.value

    def test_validation(self, small_cft_fleet):
        with pytest.raises(InvalidConfigurationError):
            monte_carlo_reliability(RaftSpec(3), small_cft_fleet, trials=0)
        with pytest.raises(InvalidConfigurationError):
            monte_carlo_reliability(RaftSpec(4), small_cft_fleet, trials=10)


class TestCorrelated:
    def test_correlation_degrades_liveness(self):
        """Paper §2: correlated faults are strictly worse for quorum systems."""
        fleet = uniform_fleet(5, 0.05)
        spec = RaftSpec(5)
        independent = counting_reliability(spec, fleet).safe_and_live.value
        shocked = CommonShockModel(fleet, (rollout_shock(fleet, 0.02),))
        correlated = monte_carlo_correlated(
            spec, shocked, trials=60_000, seed=2
        ).safe_and_live.value
        assert correlated < independent

    def test_matching_marginals_without_shock(self):
        fleet = uniform_fleet(5, 0.1)
        spec = RaftSpec(5)
        model = CommonShockModel(fleet, ())
        mc = monte_carlo_correlated(spec, model, trials=40_000, seed=3)
        exact = counting_reliability(spec, fleet)
        assert mc.safe_and_live.ci_low <= exact.safe_and_live.value <= mc.safe_and_live.ci_high

    def test_byzantine_kind_breaks_raft_safety(self):
        fleet = uniform_fleet(3, 0.3)
        spec = RaftSpec(3)
        model = CommonShockModel(fleet, ())
        result = monte_carlo_correlated(
            spec, model, trials=5_000, seed=4, failure_kind=FaultKind.BYZANTINE
        )
        assert result.safe.value < 1.0

    def test_correct_kind_rejected(self):
        fleet = uniform_fleet(3, 0.1)
        model = CommonShockModel(fleet, ())
        with pytest.raises(InvalidConfigurationError):
            monte_carlo_correlated(
                RaftSpec(3), model, trials=10, failure_kind=FaultKind.CORRECT
            )


class TestPlanning:
    def test_required_trials_scaling(self):
        few = required_trials_for_ci_width(0.5, 0.1)
        many = required_trials_for_ci_width(0.5, 0.01)
        assert many == pytest.approx(few * 100, rel=0.01)

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            required_trials_for_ci_width(0.0, 0.1)
        with pytest.raises(InvalidConfigurationError):
            required_trials_for_ci_width(0.5, 0.0)
