"""Sharded execution: shard planning, stream spawning, and the determinism
contracts of the multi-core layer.

The two regression guarantees pinned here:

* **Worker-count independence** — under spawned-stream mode, tallies,
  estimates and whole :class:`EngineResult`s are identical for ``jobs=1``
  and ``jobs=4``, across thread and process pools.
* **Legacy bit-compatibility** — with ``jobs`` unset (or 1, or a serial
  policy) every path produces byte-identical results to the historical
  single-stream implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.importance import importance_sample_violation
from repro.analysis.kernels import (
    merge_tallies,
    monte_carlo_tally,
    monte_carlo_tally_sharded,
    plan_shards,
    run_sharded,
    spawn_shard_generators,
    use_spawned_streams,
)
from repro.analysis.montecarlo import monte_carlo_reliability
from repro.engine import (
    ExecutionPolicy,
    ReliabilityEngine,
    Scenario,
    ScenarioSet,
)
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import uniform_fleet
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec


class TestShardPlanning:
    def test_shards_sum_to_trials(self):
        for trials in (1, 4096, 50_000, 123_457, 1_000_000):
            plan = plan_shards(trials)
            assert sum(plan.shards) == trials
            assert all(s > 0 for s in plan.shards)

    def test_plan_is_independent_of_worker_count(self):
        # The plan takes no jobs parameter at all; same inputs, same plan.
        assert plan_shards(100_000) == plan_shards(100_000)

    def test_small_budgets_make_single_shard(self):
        plan = plan_shards(1000)
        assert plan.shards == (1000,)

    def test_explicit_shard_trials(self):
        plan = plan_shards(10_000, shard_trials=3000)
        assert plan.shards == (3000, 3000, 3000, 1000)

    def test_default_grain_bounds_shard_count(self):
        assert plan_shards(10_000_000).num_shards == 16

    def test_rejects_bad_inputs(self):
        with pytest.raises(InvalidConfigurationError):
            plan_shards(0)
        with pytest.raises(InvalidConfigurationError):
            plan_shards(100, shard_trials=0)

    def test_spawned_generators_are_deterministic_and_distinct(self):
        a = spawn_shard_generators(7, 3)
        b = spawn_shard_generators(7, 3)
        draws_a = [rng.random(4).tolist() for rng in a]
        draws_b = [rng.random(4).tolist() for rng in b]
        assert draws_a == draws_b
        assert draws_a[0] != draws_a[1] != draws_a[2]

    def test_spawn_prefix_stability(self):
        # The first k children of a bigger spawn equal a smaller spawn's
        # children: shard streams never depend on how many shards follow.
        small = [rng.random(4).tolist() for rng in spawn_shard_generators(3, 2)]
        big = [rng.random(4).tolist() for rng in spawn_shard_generators(3, 5)]
        assert big[:2] == small

    def test_stream_mode_resolution(self):
        assert not use_spawned_streams(None, "auto")
        assert not use_spawned_streams(1, "auto")
        assert use_spawned_streams(2, "auto")
        assert use_spawned_streams(None, "spawn")
        assert not use_spawned_streams(None, "legacy")
        with pytest.raises(InvalidConfigurationError):
            use_spawned_streams(4, "legacy")
        with pytest.raises(InvalidConfigurationError):
            use_spawned_streams(2, "banana")

    def test_run_sharded_preserves_payload_order(self):
        double = lambda x: x * 2  # noqa: E731
        for mode in ("serial", "thread"):
            assert run_sharded(double, list(range(8)), jobs=4, mode=mode) == [
                0, 2, 4, 6, 8, 10, 12, 14,
            ]

    def test_merge_tallies_sums_fields(self):
        spec, fleet = RaftSpec(3), uniform_fleet(3, 0.1)
        rng = np.random.default_rng(0)
        parts = [monte_carlo_tally(spec, fleet, 500, rng) for _ in range(3)]
        merged = merge_tallies(parts)
        assert merged.trials == 1500
        assert merged.safe == sum(p.safe for p in parts)
        assert merged.both == sum(p.both for p in parts)


class TestShardDeterminism:
    """jobs=1 vs jobs=4 identical (spawned-stream mode); legacy unchanged."""

    SPEC = RaftSpec(7)
    FLEET = uniform_fleet(7, 0.05)

    def test_tally_identical_across_jobs_and_pools(self):
        reference, plan = monte_carlo_tally_sharded(
            self.SPEC, self.FLEET, 30_000, 42, jobs=1, mode="serial"
        )
        assert plan.num_shards > 1  # the contract below is non-trivial
        for jobs, mode in ((4, "thread"), (2, "thread"), (4, "process")):
            tally, other_plan = monte_carlo_tally_sharded(
                self.SPEC, self.FLEET, 30_000, 42, jobs=jobs, mode=mode
            )
            assert tally == reference
            assert other_plan == plan

    def test_reliability_identical_across_jobs(self):
        one = monte_carlo_reliability(
            self.SPEC, self.FLEET, trials=30_000, seed=42,
            jobs=1, sharding="spawn", pool="serial",
        )
        four_t = monte_carlo_reliability(
            self.SPEC, self.FLEET, trials=30_000, seed=42, jobs=4, pool="thread"
        )
        four_p = monte_carlo_reliability(
            self.SPEC, self.FLEET, trials=30_000, seed=42, jobs=4, pool="process"
        )
        assert one == four_t == four_p

    def test_legacy_results_byte_identical_when_jobs_unset(self):
        from repro._rng import as_generator

        unset = monte_carlo_reliability(self.SPEC, self.FLEET, trials=20_000, seed=9)
        jobs_one = monte_carlo_reliability(
            self.SPEC, self.FLEET, trials=20_000, seed=9, jobs=1
        )
        assert unset == jobs_one
        # ... and both match the raw legacy kernel stream exactly.
        tally = monte_carlo_tally(self.SPEC, self.FLEET, 20_000, as_generator(9))
        assert unset.safe.value == tally.safe / 20_000
        assert unset.safe_and_live.value == tally.both / 20_000
        assert "shards" not in unset.detail

    def test_spawn_differs_from_legacy_but_agrees_statistically(self):
        legacy = monte_carlo_reliability(self.SPEC, self.FLEET, trials=40_000, seed=5)
        spawned = monte_carlo_reliability(
            self.SPEC, self.FLEET, trials=40_000, seed=5, jobs=2, pool="thread"
        )
        assert legacy != spawned  # different streams by design
        assert abs(legacy.safe_and_live.value - spawned.safe_and_live.value) < 0.01

    def test_legacy_mode_rejects_parallel_jobs(self):
        with pytest.raises(InvalidConfigurationError):
            monte_carlo_reliability(
                self.SPEC, self.FLEET, trials=1000, seed=1, jobs=4, sharding="legacy"
            )

    def test_importance_identical_across_jobs(self):
        kwargs = dict(predicate="live", trials=12_000, seed=3)
        one = importance_sample_violation(
            self.SPEC, self.FLEET, jobs=1, sharding="spawn", pool="serial", **kwargs
        )
        four = importance_sample_violation(
            self.SPEC, self.FLEET, jobs=4, pool="thread", **kwargs
        )
        assert one == four
        assert one.shards > 1

    def test_importance_legacy_unchanged_when_jobs_unset(self):
        kwargs = dict(predicate="live", trials=12_000, seed=3)
        a = importance_sample_violation(self.SPEC, self.FLEET, **kwargs)
        b = importance_sample_violation(self.SPEC, self.FLEET, jobs=1, **kwargs)
        assert a == b
        assert a.shards == 1


def _mixed_scenarios() -> ScenarioSet:
    scenarios = []
    for n in (3, 5, 7):
        for p in (0.01, 0.05):
            scenarios.append(Scenario(spec=RaftSpec(n), fleet=uniform_fleet(n, p)))
            scenarios.append(
                Scenario(spec=PBFTSpec(n), fleet=uniform_fleet(n, p, byzantine_fraction=1.0))
            )
            scenarios.append(
                Scenario(
                    spec=RaftSpec(n),
                    fleet=uniform_fleet(n, p),
                    method="monte-carlo",
                    trials=20_000,
                    seed=n * 100 + 1,
                )
            )
    scenarios.append(
        Scenario(
            spec=RaftSpec(5),
            fleet=uniform_fleet(5, 0.05),
            method="importance",
            trials=8_000,
            seed=77,
        )
    )
    return ScenarioSet.build(scenarios)


class TestEnginePolicy:
    def test_engine_result_identical_jobs1_vs_jobs4(self):
        scenarios = _mixed_scenarios()
        one = ReliabilityEngine().run(scenarios, policy=ExecutionPolicy(mode="thread", jobs=1))
        four = ReliabilityEngine().run(scenarios, policy=ExecutionPolicy(mode="thread", jobs=4))
        proc = ReliabilityEngine().run(scenarios, policy=ExecutionPolicy(mode="process", jobs=4))
        assert one.results == four.results == proc.results

    def test_legacy_engine_result_byte_identical_when_policy_unset(self):
        scenarios = _mixed_scenarios()
        baseline = ReliabilityEngine().run(scenarios)
        serial = ReliabilityEngine().run(scenarios, policy=ExecutionPolicy())
        assert baseline.results == serial.results
        # The serial policy keeps legacy details (no shard annotations).
        for outcome in baseline:
            assert "shards" not in outcome.result.detail
            assert outcome.provenance.shards == 1

    def test_exact_values_unchanged_under_parallel_policy(self):
        scenarios = _mixed_scenarios()
        serial = ReliabilityEngine().run(scenarios)
        parallel = ReliabilityEngine().run(
            scenarios, policy=ExecutionPolicy(mode="thread", jobs=4)
        )
        for s, p in zip(serial, parallel):
            if p.provenance.estimator in ("counting", "exact"):
                assert s.result == p.result

    def test_provenance_records_shard_count(self):
        outcome = ReliabilityEngine().run_one(
            Scenario(
                spec=RaftSpec(5),
                fleet=uniform_fleet(5, 0.05),
                method="monte-carlo",
                trials=30_000,
                seed=1,
            ),
            policy=ExecutionPolicy(mode="thread", jobs=2),
        )
        assert outcome.provenance.shards == 8  # 30000 / 4096-trial shards
        assert "shards[8]" in outcome.provenance.describe()

    def test_policy_and_legacy_cache_entries_do_not_collide(self):
        engine = ReliabilityEngine()
        scenario = Scenario(
            spec=RaftSpec(5),
            fleet=uniform_fleet(5, 0.05),
            method="monte-carlo",
            trials=20_000,
            seed=4,
        )
        legacy = engine.run_one(scenario).result
        spawned = engine.run_one(
            scenario, policy=ExecutionPolicy(mode="thread", jobs=2)
        ).result
        assert legacy != spawned
        # Each mode hits its own cache entry on re-run.
        assert engine.run_one(scenario).result == legacy
        again = engine.run_one(scenario, policy=ExecutionPolicy(mode="thread", jobs=2))
        assert again.result == spawned
        assert again.provenance.cache_hit

    def test_policy_validation(self):
        with pytest.raises(InvalidConfigurationError):
            ExecutionPolicy(mode="serial", jobs=2)
        with pytest.raises(InvalidConfigurationError):
            ExecutionPolicy(mode="warp", jobs=2)
        with pytest.raises(InvalidConfigurationError):
            ExecutionPolicy(mode="thread", jobs=0)
        with pytest.raises(InvalidConfigurationError):
            ExecutionPolicy(mode="thread", jobs=2, shard_trials=0)

    def test_from_jobs(self):
        assert not ExecutionPolicy.from_jobs(None).parallel
        assert not ExecutionPolicy.from_jobs(0).parallel
        # An *explicit* --jobs 1 opts into spawned streams, so the CLI's
        # "identical numbers for any N" contract includes N=1.
        one = ExecutionPolicy.from_jobs(1)
        assert one.spawned_streams and one.jobs == 1
        policy = ExecutionPolicy.from_jobs(3)
        assert policy.mode == "process" and policy.jobs == 3
        negative = ExecutionPolicy.from_jobs(-1)
        assert negative.jobs >= 1 and negative.spawned_streams

    def test_engine_default_policy_constructor(self):
        scenarios = _mixed_scenarios()
        engine = ReliabilityEngine(policy=ExecutionPolicy(mode="thread", jobs=4))
        baseline = ReliabilityEngine().run(
            scenarios, policy=ExecutionPolicy(mode="thread", jobs=1)
        )
        assert engine.run(scenarios).results == baseline.results

    def test_overrides_still_honored_under_process_policy(self):
        from repro.analysis.counting import counting_reliability

        calls = []

        def custom(scenario):
            calls.append(scenario.label)
            return counting_reliability(scenario.spec, scenario.fleet)

        engine = ReliabilityEngine(estimators={"monte-carlo": custom})
        scenarios = [
            Scenario(
                spec=RaftSpec(3),
                fleet=uniform_fleet(3, 0.01),
                method="monte-carlo",
                label=f"s{i}",
            )
            for i in range(3)
        ]
        result = engine.run(scenarios, policy=ExecutionPolicy(mode="process", jobs=2))
        assert len(calls) == 3  # ran in-process, through the override
        reference = counting_reliability(RaftSpec(3), uniform_fleet(3, 0.01))
        assert all(o.result == reference for o in result)

    def test_generator_seed_scenarios_run_deterministically_in_order(self):
        def build(policy):
            rng = np.random.default_rng(123)
            scenarios = [
                Scenario(
                    spec=RaftSpec(3),
                    fleet=uniform_fleet(3, 0.05),
                    method="monte-carlo",
                    trials=5_000,
                    seed=rng,
                    label=f"g{i}",
                )
                for i in range(3)
            ]
            return ReliabilityEngine().run(scenarios, policy=policy).results

        one = build(ExecutionPolicy(mode="thread", jobs=1))
        four = build(ExecutionPolicy(mode="thread", jobs=4))
        assert one == four
