"""Unit tests for Birnbaum importance and the upgrade advisor."""

from __future__ import annotations

import pytest

from repro.analysis.config import FaultKind
from repro.analysis.counting import counting_reliability
from repro.analysis.sensitivity import (
    best_single_upgrade,
    birnbaum_importance,
    greedy_upgrade_plan,
    importance_ranking,
    reliability_gradient,
)
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import Fleet, NodeModel, heterogeneous_fleet, uniform_fleet
from repro.protocols.raft import RaftSpec
from repro.protocols.reliability_aware import ReliabilityAwareRaftSpec


class TestBirnbaum:
    def test_matches_finite_difference(self):
        """B_u must equal the derivative of reliability in p_u."""
        fleet = heterogeneous_fleet([(2, NodeModel(0.05)), (3, NodeModel(0.2))])
        spec = RaftSpec(5)
        node = 0
        importance = birnbaum_importance(spec, fleet, node, metric="live")
        eps = 1e-6
        base_p = fleet[node].p_fail
        up = counting_reliability(spec, fleet.replace(node, NodeModel(base_p + eps)))
        down = counting_reliability(spec, fleet.replace(node, NodeModel(base_p - eps)))
        derivative = (up.live.value - down.live.value) / (2 * eps)
        assert importance == pytest.approx(-derivative, rel=1e-4)

    def test_symmetric_fleet_equal_importance(self):
        fleet = uniform_fleet(5, 0.1)
        spec = RaftSpec(5)
        scores = [birnbaum_importance(spec, fleet, i) for i in range(5)]
        assert all(s == pytest.approx(scores[0]) for s in scores)

    def test_raft_safety_insensitive_to_crashes(self):
        fleet = uniform_fleet(5, 0.1)
        assert birnbaum_importance(RaftSpec(5), fleet, 0, metric="safe") == 0.0

    def test_raft_safety_sensitive_to_byzantine(self):
        fleet = uniform_fleet(5, 0.1)
        importance = birnbaum_importance(
            RaftSpec(5), fleet, 0, metric="safe", failure_kind=FaultKind.BYZANTINE
        )
        assert importance > 0.9  # one Byzantine node sinks CFT safety

    def test_asymmetric_spec_pinned_nodes_matter_more(self):
        fleet = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])
        spec = ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], require_pinned=1)
        ranking = importance_ranking(spec, fleet, metric="live")
        # All-pinned-down kills liveness outright, so a pinned node carries
        # the extra failure mode and outranks symmetric unpinned nodes...
        # at least one pinned node must appear in the top half.
        top = [node for node, _ in ranking[:3]]
        assert any(node in (4, 5, 6) for node in top)

    def test_validation(self):
        fleet = uniform_fleet(3, 0.1)
        with pytest.raises(InvalidConfigurationError):
            birnbaum_importance(RaftSpec(3), fleet, 7)
        with pytest.raises(InvalidConfigurationError):
            birnbaum_importance(RaftSpec(3), fleet, 0, failure_kind=FaultKind.CORRECT)
        with pytest.raises(InvalidConfigurationError):
            birnbaum_importance(RaftSpec(3), fleet, 0, metric="vibes")


class TestUpgradeAdvisor:
    def test_targets_flakiest_node(self):
        fleet = Fleet((NodeModel(0.02), NodeModel(0.3), NodeModel(0.05)))
        option = best_single_upgrade(RaftSpec(3), fleet, NodeModel(0.01))
        assert option is not None
        assert option.node == 1
        assert option.gain > 0

    def test_no_upgrade_when_replacement_worse(self):
        fleet = uniform_fleet(3, 0.01)
        assert best_single_upgrade(RaftSpec(3), fleet, NodeModel(0.05)) is None

    def test_greedy_plan_monotone_gains(self):
        fleet = Fleet((NodeModel(0.3), NodeModel(0.25), NodeModel(0.2), NodeModel(0.05), NodeModel(0.05)))
        plan = greedy_upgrade_plan(RaftSpec(5), fleet, NodeModel(0.01), budget=3)
        assert len(plan) == 3
        assert [o.node for o in plan] == [0, 1, 2]  # flakiest first
        gains = [o.gain for o in plan]
        assert gains == sorted(gains, reverse=True)  # diminishing returns

    def test_budget_zero(self):
        fleet = uniform_fleet(3, 0.2)
        assert greedy_upgrade_plan(RaftSpec(3), fleet, NodeModel(0.01), budget=0) == []

    def test_gradient_sign(self):
        fleet = uniform_fleet(5, 0.1)
        gradient = reliability_gradient(RaftSpec(5), fleet)
        assert all(g < 0 for g in gradient)  # worse nodes, worse system
