"""Fault-plan subsystem tests: codecs, compilation, behaviours, thresholds.

Covers the fault-injection acceptance criteria:

* the PBFT Byzantine composition matrix — an equivocating (double-voting)
  primary plus ``k`` double-voting accomplices driven through the
  injector flips trace-level safety exactly where Theorem 3.1 says
  (``|Byz| >= 2|Q_eq| - N``);
* hypothesis round-trip properties for the fault-plan JSON codecs;
* jobs-invariance of adversary/partition/burst campaigns;
* the ``plan_from_config`` MTTR satellite and partition-era liveness
  reporting in the checker.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.config import FailureConfig, FaultKind
from repro.engine import (
    ExecutionPolicy,
    ReliabilityEngine,
    Scenario,
    SimulationQuery,
    query_from_dict,
)
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import uniform_fleet
from repro.injection import (
    Adversary,
    CorrelatedBurst,
    CrashStop,
    DelayBurst,
    FaultPlan,
    LossBurst,
    PartitionEvent,
    behaviour_factory,
    compile_faults,
    fault_event_from_dict,
    register_behaviour,
    registered_behaviours,
    registered_fault_events,
    supports_byzantine,
)
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec
from repro.sim.checker import check_completion
from repro.sim.failures import plan_from_config


def _campaign(spec, *, faults=None, n=None, p=0.0, seed=13, replicas=1, **kw):
    n = spec.n if n is None else n
    query = SimulationQuery(
        Scenario(spec=spec, fleet=uniform_fleet(n, p), seed=seed),
        replicas=replicas,
        duration=kw.pop("duration", 12.0),
        commands=kw.pop("commands", 1),
        faults=faults,
        **kw,
    )
    return ReliabilityEngine(cache_size=0).run_query(query).value


# ---------------------------------------------------------------------------
# Theorem 3.1 composition matrix
# ---------------------------------------------------------------------------
class TestByzantineThreshold:
    """EquivocatingPrimary + k DoubleVoters across n, via the injector."""

    def attack_is_safe(self, n: int, byzantine: tuple[int, ...]) -> bool:
        value = _campaign(
            PBFTSpec(n), faults=FaultPlan(adversary=Adversary(nodes=byzantine))
        )
        return value.safety_violations == 0

    @pytest.mark.parametrize(
        "n, placements",
        [
            (4, [(0,), (1,), (2,), (3,)]),  # k=1 < 2*q_eq - n = 2
            (7, [(0, 5), (0, 6), (2, 4)]),  # k=2 < 2*q_eq - n = 3
        ],
    )
    def test_below_threshold_every_placement_safe(self, n, placements):
        spec = PBFTSpec(n)
        for byzantine in placements:
            assert spec.is_safe_counts(0, len(byzantine))
            assert self.attack_is_safe(n, byzantine), (n, byzantine)

    @pytest.mark.parametrize(
        "n, byzantine",
        [
            (4, (0, 2)),  # k=2 = 2*q_eq - n: one colluder per network half
            (7, (0, 5, 6)),  # k=3 = 2*q_eq - n
        ],
    )
    def test_at_threshold_adversarial_placement_splits_cluster(self, n, byzantine):
        spec = PBFTSpec(n)
        assert not spec.is_safe_counts(0, len(byzantine))
        assert not self.attack_is_safe(n, byzantine), (n, byzantine)

    def test_silent_byzantine_threatens_liveness_not_safety(self):
        # Two silent nodes in n=4 leave only 2 < q_eq=3 active voters.
        value = _campaign(
            PBFTSpec(4),
            faults=FaultPlan(
                adversary=Adversary(
                    nodes=(1, 2), behaviour="silent", primary_behaviour="silent"
                )
            ),
            duration=6.0,
        )
        assert value.safety_violations == 0
        assert value.liveness_violations == 1
        assert value.predicate_mismatches == 0  # Thm 3.1 agrees: not live

    def test_sampled_byzantine_fleet_runs_behaviours(self):
        # A fleet that *samples* Byzantine outcomes activates the default
        # adversary mix; with p_byzantine=1 every node misbehaves, so no
        # correct pair can disagree, but the campaign must execute cleanly.
        value = _campaign(
            PBFTSpec(4), p=0.999, seed=5, replicas=3, duration=6.0
        )
        assert value.replicas == 3


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------
_EVENTS = st.one_of(
    st.builds(
        CrashStop,
        node=st.integers(0, 3),
        at=st.floats(0.001, 5.0, allow_nan=False),
        recover_at=st.none() | st.floats(6.0, 9.0, allow_nan=False),
    ),
    st.builds(
        CrashStop,
        node=st.integers(0, 3),
        at=st.floats(0.001, 5.0, allow_nan=False),
        mean_time_to_repair=st.floats(0.1, 5.0, allow_nan=False),
    ),
    st.builds(
        PartitionEvent,
        groups=st.just(((0, 1), (2, 3))),
        at=st.floats(0.0, 4.0, allow_nan=False),
        heal_at=st.none() | st.floats(5.0, 9.0, allow_nan=False),
    ),
    st.builds(
        LossBurst,
        at=st.floats(0.0, 3.0, allow_nan=False),
        until=st.floats(4.0, 9.0, allow_nan=False),
        drop_probability=st.floats(0.0, 0.99, allow_nan=False),
    ),
    st.builds(
        DelayBurst,
        at=st.floats(0.0, 3.0, allow_nan=False),
        until=st.floats(4.0, 9.0, allow_nan=False),
        extra_delay=st.floats(0.0, 1.0, allow_nan=False),
    ),
    st.builds(
        CorrelatedBurst,
        members=st.just((0, 2)),
        at=st.floats(0.001, 5.0, allow_nan=False),
        probability=st.floats(0.0, 1.0, allow_nan=False),
        lethality=st.floats(0.0, 1.0, allow_nan=False),
        mean_time_to_repair=st.none() | st.floats(0.1, 5.0, allow_nan=False),
    ),
)

_PLANS = st.builds(
    FaultPlan,
    events=st.lists(_EVENTS, max_size=4).map(tuple),
    adversary=st.none()
    | st.builds(
        Adversary,
        nodes=st.just(()) | st.just((0, 2)),
        behaviour=st.sampled_from(["double-vote", "silent", "equivocate"]),
        primary_behaviour=st.sampled_from(
            ["equivocate+double-vote", "equivocate", "silent"]
        ),
    ),
    sample_faults=st.booleans(),
    mean_time_to_repair=st.none() | st.floats(0.1, 10.0, allow_nan=False),
)


class TestCodecs:
    @settings(max_examples=60, deadline=None)
    @given(plan=_PLANS)
    def test_plan_dict_and_json_round_trip(self, plan):
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert rebuilt.cache_key() == plan.cache_key()
        assert hash(rebuilt.cache_key()) == hash(plan.cache_key())

    @settings(max_examples=40, deadline=None)
    @given(event=_EVENTS)
    def test_event_dict_round_trip(self, event):
        rebuilt = fault_event_from_dict(event.to_dict())
        assert type(rebuilt) is type(event)
        assert rebuilt == event

    def test_registered_event_kinds(self):
        assert set(registered_fault_events()) >= {
            "crash",
            "partition",
            "loss-burst",
            "delay-burst",
            "correlated-burst",
        }

    def test_simulation_query_embeds_fault_plan(self):
        plan = FaultPlan(
            events=(
                PartitionEvent(groups=((0, 1), (2, 3)), at=2.0, heal_at=4.0),
                CrashStop(node=1, at=1.0, mean_time_to_repair=2.0),
            ),
            adversary=Adversary(nodes=(0,)),
            mean_time_to_repair=3.0,
        )
        query = SimulationQuery(
            Scenario(spec=PBFTSpec(4), fleet=uniform_fleet(4, 0.1), seed=9),
            replicas=5,
            duration=8.0,
            commands=2,
            faults=plan,
        )
        rebuilt = query_from_dict(query.to_dict())
        assert isinstance(rebuilt, SimulationQuery)
        assert rebuilt.faults == plan
        assert rebuilt.to_dict() == query.to_dict()
        assert rebuilt.fault_key() == query.fault_key()

    def test_malformed_event_sections_rejected_cleanly(self):
        # A single event object where the list belongs (a common JSON
        # mistake) must raise the library error, not an AttributeError —
        # the CLI's "invalid query file" wrapper only catches the former.
        with pytest.raises(InvalidConfigurationError, match="list of event"):
            FaultPlan.from_dict(
                {"events": {"kind": "partition", "groups": [[0], [1]], "at": 1.0}}
            )
        with pytest.raises(InvalidConfigurationError, match="must be an object"):
            FaultPlan.from_dict({"events": ["partition"]})

    def test_sample_faults_must_be_boolean(self):
        # bool("false") is True — coercion would silently run the sampling
        # the user disabled.
        with pytest.raises(InvalidConfigurationError, match="JSON boolean"):
            FaultPlan.from_dict({"sample_faults": "false"})
        assert FaultPlan.from_dict({"sample_faults": False}).sample_faults is False

    def test_unknown_fields_rejected(self):
        with pytest.raises(InvalidConfigurationError, match="fnord"):
            FaultPlan.from_dict({"fnord": 1})
        with pytest.raises(InvalidConfigurationError, match="fnord"):
            fault_event_from_dict({"kind": "crash", "node": 0, "at": 1.0, "fnord": 2})
        with pytest.raises(InvalidConfigurationError, match="unknown fault event"):
            fault_event_from_dict({"kind": "fnord"})
        with pytest.raises(InvalidConfigurationError, match="adversary"):
            FaultPlan.from_dict({"adversary": {"fnord": []}})

    def test_event_validation(self):
        with pytest.raises(InvalidConfigurationError, match="not both"):
            CrashStop(node=0, at=1.0, recover_at=3.0, mean_time_to_repair=1.0)
        with pytest.raises(InvalidConfigurationError, match="precedes"):
            CrashStop(node=0, at=2.0, recover_at=1.0)
        with pytest.raises(InvalidConfigurationError, match="disjoint"):
            PartitionEvent(groups=((0, 1), (1, 2)), at=1.0)
        with pytest.raises(InvalidConfigurationError, match="at < until"):
            LossBurst(at=3.0, until=2.0, drop_probability=0.5)
        with pytest.raises(InvalidConfigurationError, match="duplicate"):
            CorrelatedBurst(members=(0, 0), at=1.0)
        # deployment-bounds checks happen at query construction
        plan = FaultPlan(events=(CrashStop(node=9, at=1.0),))
        with pytest.raises(InvalidConfigurationError, match="outside fleet"):
            SimulationQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.0)),
                duration=6.0,
                commands=2,
                faults=plan,
            )
        late = FaultPlan(events=(CrashStop(node=0, at=7.0),))
        with pytest.raises(InvalidConfigurationError, match="outside run"):
            SimulationQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.0)),
                duration=6.0,
                commands=2,
                faults=late,
            )

    def test_overlapping_partitions_rejected(self):
        # The network holds one partition at a time; a second split that
        # starts before the first heals would overwrite it silently.
        overlapping = FaultPlan(
            events=(
                PartitionEvent(groups=((0, 1), (2,)), at=1.0, heal_at=5.0),
                PartitionEvent(groups=((0,), (1, 2)), at=2.0, heal_at=3.0),
            )
        )
        with pytest.raises(InvalidConfigurationError, match="one partition"):
            SimulationQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.0)),
                duration=6.0,
                commands=2,
                faults=overlapping,
            )
        # unhealed partitions block any later one too
        unhealed = FaultPlan(
            events=(
                PartitionEvent(groups=((0, 1), (2,)), at=1.0),
                PartitionEvent(groups=((0,), (1, 2)), at=4.0, heal_at=5.0),
            )
        )
        with pytest.raises(InvalidConfigurationError, match="one partition"):
            SimulationQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.0)),
                duration=6.0,
                commands=2,
                faults=unhealed,
            )
        # back-to-back (heal == next start) is fine
        SimulationQuery(
            Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.0)),
            duration=6.0,
            commands=2,
            faults=FaultPlan(
                events=(
                    PartitionEvent(groups=((0, 1), (2,)), at=1.0, heal_at=3.0),
                    PartitionEvent(groups=((0,), (1, 2)), at=3.0, heal_at=5.0),
                )
            ),
        )

    def test_overlapping_bursts_rejected(self):
        # A shorter loss burst inside a longer one would restore the
        # baseline mid-burst when it ends — same silent-truncation class
        # as overlapping partitions, rejected the same way.
        overlapping = FaultPlan(
            events=(
                LossBurst(at=1.0, until=5.0, drop_probability=0.5),
                LossBurst(at=2.0, until=3.0, drop_probability=0.9),
            )
        )
        with pytest.raises(InvalidConfigurationError, match="loss-burst"):
            SimulationQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.0)),
                duration=6.0,
                commands=2,
                faults=overlapping,
            )
        delays = FaultPlan(
            events=(
                DelayBurst(at=1.0, until=4.0, extra_delay=0.01),
                DelayBurst(at=3.0, until=5.0, extra_delay=0.02),
            )
        )
        with pytest.raises(InvalidConfigurationError, match="delay-burst"):
            SimulationQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.0)),
                duration=6.0,
                commands=2,
                faults=delays,
            )

    def test_back_to_back_windows_apply_chronologically(self):
        # Declaration order must not matter: with the later window declared
        # first, the earlier window's heal at the shared boundary still
        # yields to the next partition, which stays in force.
        from repro.sim.cluster import Cluster
        from repro.sim.raft import raft_node_factory

        group_shapes = (((0, 1), (2,)), ((0,), (1, 2)))
        for declaration in (0, 1):
            events = [
                PartitionEvent(groups=group_shapes[0], at=3.0, heal_at=5.0),
                PartitionEvent(groups=group_shapes[1], at=1.0, heal_at=3.0),
            ]
            if declaration:
                events.reverse()
            compiled = compile_faults(
                FaultPlan(events=tuple(events), sample_faults=False),
                fleet=uniform_fleet(3, 0.0),
                duration=6.0,
                crash_window=(0.0, 1.0),
                rng=np.random.default_rng(0),
            )
            cluster = Cluster(3, raft_node_factory(), seed=1)
            compiled.apply_network(cluster)
            cluster.start()
            cluster.run_until(4.0)
            # mid-way through the second declared window: still split
            assert cluster.network._partition is not None, declaration
            cluster.run_until(5.5)
            assert cluster.network._partition is None, declaration

    def test_default_plan_and_none_share_cache_entries(self):
        # faults=None runs FaultPlan() bit-for-bit, so the two key equal.
        scenario = Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.2), seed=4)
        bare = SimulationQuery(scenario, replicas=2, duration=6.0, commands=2)
        explicit = SimulationQuery(
            scenario, replicas=2, duration=6.0, commands=2, faults=FaultPlan()
        )
        assert bare.fault_key() == explicit.fault_key()
        engine = ReliabilityEngine()
        first = engine.run_query(bare)
        second = engine.run_query(explicit)
        assert second.provenance.cache_hit
        assert second.value is first.value

    def test_byzantine_fleet_allowed_when_sampling_disabled(self):
        # With sample_faults=False the fleet's Byzantine probabilities can
        # never materialise, so a Raft fleet needs no behaviour registry.
        query = SimulationQuery(
            Scenario(
                spec=RaftSpec(3), fleet=uniform_fleet(3, 0.1, byzantine_fraction=0.5)
            ),
            replicas=2,
            duration=4.0,
            commands=2,
            faults=FaultPlan(sample_faults=False),
        )
        assert query.replicas == 2

    def test_unknown_adversary_behaviour_fails_at_construction(self):
        # Behaviour names resolve at parse time, not as a worker traceback
        # mid-campaign.
        with pytest.raises(InvalidConfigurationError, match="fnord"):
            SimulationQuery(
                Scenario(spec=PBFTSpec(4), fleet=uniform_fleet(4, 0.0), seed=1),
                replicas=2,
                duration=4.0,
                commands=2,
                faults=FaultPlan(
                    adversary=Adversary(nodes=(1,), behaviour="fnord")
                ),
            )


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------
class TestCompileFaults:
    def test_default_plan_matches_plan_from_config_draws(self):
        fleet = uniform_fleet(5, 0.4)
        compiled = compile_faults(
            None,
            fleet=fleet,
            duration=10.0,
            crash_window=(0.0, 4.0),
            rng=np.random.default_rng(3),
        )
        # Re-draw by hand from the same stream: one config draw, then the
        # crash-time uniforms — the historical backend order.
        from repro.analysis.montecarlo import sample_configuration

        rng = np.random.default_rng(3)
        config = sample_configuration(fleet, rng)
        plan = plan_from_config(
            config, duration=10.0, crash_window=(0.0, 4.0), seed=rng
        )
        assert compiled.config == config
        assert compiled.outages == tuple(
            (node, at, None) for node, at in sorted(plan.crash_times.items())
        )
        assert compiled.behaviours == {}
        assert compiled.network_ops == ()

    def test_event_crashes_join_the_window_config(self):
        compiled = compile_faults(
            FaultPlan(events=(CrashStop(node=2, at=3.0),), sample_faults=False),
            fleet=uniform_fleet(4, 0.0),
            duration=8.0,
            crash_window=(0.0, 1.0),
            rng=np.random.default_rng(0),
        )
        assert compiled.config[2] is FaultKind.CRASH
        assert compiled.config.num_failed == 1
        assert compiled.outages == ((2, 3.0, None),)

    def test_adversary_nodes_never_fail_stop(self):
        compiled = compile_faults(
            FaultPlan(adversary=Adversary(nodes=(0, 1))),
            fleet=uniform_fleet(4, 0.999),
            duration=8.0,
            crash_window=(0.0, 1.0),
            rng=np.random.default_rng(1),
        )
        assert compiled.config[0] is FaultKind.BYZANTINE
        assert compiled.config[1] is FaultKind.BYZANTINE
        assert not {0, 1} & compiled.crashed_nodes()
        assert compiled.behaviours[0] == "equivocate+double-vote"
        assert compiled.behaviours[1] == "double-vote"

    def test_disjoint_crash_intervals_schedule_separate_outages(self):
        # A recovered outage followed by a later terminal crash must keep
        # both intervals — the node goes down, comes back, and dies again.
        plan = FaultPlan(
            events=(
                CrashStop(node=1, at=1.0, recover_at=2.0),
                CrashStop(node=1, at=5.0),
            ),
            sample_faults=False,
        )
        compiled = compile_faults(
            plan,
            fleet=uniform_fleet(3, 0.0),
            duration=8.0,
            crash_window=(0.0, 1.0),
            rng=np.random.default_rng(0),
        )
        assert compiled.outages == ((1, 1.0, 2.0), (1, 5.0, None))

    def test_same_start_terminal_and_finite_intervals_merge(self):
        # Two causes striking the same node at the same instant, one
        # terminal and one repaired: the union is terminal (no TypeError
        # from comparing None with float).
        plan = FaultPlan(
            events=(
                CrashStop(node=1, at=3.0),
                CrashStop(node=1, at=3.0, recover_at=5.0),
            ),
            sample_faults=False,
        )
        compiled = compile_faults(
            plan,
            fleet=uniform_fleet(3, 0.0),
            duration=8.0,
            crash_window=(0.0, 1.0),
            rng=np.random.default_rng(0),
        )
        assert compiled.outages == ((1, 3.0, None),)

    def test_overlapping_crash_intervals_union(self):
        # A repair mid-way through another cause's outage never revives
        # the node: overlapping intervals merge to the later recovery.
        plan = FaultPlan(
            events=(
                CrashStop(node=0, at=1.0, recover_at=3.0),
                CrashStop(node=0, at=2.0, recover_at=6.0),
                CrashStop(node=2, at=1.0, recover_at=4.0),
                CrashStop(node=2, at=2.0),  # terminal cause wins
            ),
            sample_faults=False,
        )
        compiled = compile_faults(
            plan,
            fleet=uniform_fleet(3, 0.0),
            duration=8.0,
            crash_window=(0.0, 1.0),
            rng=np.random.default_rng(0),
        )
        assert compiled.outages == ((0, 1.0, 6.0), (2, 1.0, None))

    def test_correlated_scenario_samples_from_model(self):
        from repro.faults.correlation import CommonShockModel, ShockGroup

        fleet = uniform_fleet(4, 0.0)
        model = CommonShockModel(fleet, (ShockGroup((0, 1, 2), 1.0),))
        compiled = compile_faults(
            None,
            fleet=fleet,
            duration=8.0,
            crash_window=(0.0, 1.0),
            correlation=model,
            rng=np.random.default_rng(2),
        )
        # The shock fires with certainty: nodes 0-2 are window failures.
        assert compiled.config.crashed_indices == frozenset({0, 1, 2})

    def test_correlated_burst_event_draws_and_repairs(self):
        burst = CorrelatedBurst(
            members=(0, 1), at=2.0, probability=1.0, mean_time_to_repair=1.0
        )
        compiled = compile_faults(
            FaultPlan(events=(burst,), sample_faults=False),
            fleet=uniform_fleet(3, 0.0),
            duration=50.0,
            crash_window=(0.0, 1.0),
            rng=np.random.default_rng(4),
        )
        assert compiled.crashed_nodes() == {0, 1}
        for node, crash, recover in compiled.outages:
            assert crash == 2.0
            assert recover is None or recover > 2.0
        assert compiled.config.crashed_indices == frozenset({0, 1})

    def test_plan_mttr_schedules_recoveries(self):
        compiled = compile_faults(
            FaultPlan(mean_time_to_repair=1.0),
            fleet=uniform_fleet(5, 0.9),
            duration=200.0,
            crash_window=(0.0, 1.0),
            rng=np.random.default_rng(6),
        )
        assert compiled.outages  # p=0.9 crashes someone
        for node, crash, recover in compiled.outages:
            assert recover is None or crash < recover < 200.0


# ---------------------------------------------------------------------------
# Behaviour registry
# ---------------------------------------------------------------------------
class TestBehaviourRegistry:
    def test_engine_import_stays_sim_free(self):
        # Built-in behaviours register lazily: importing the engine (which
        # imports repro.injection for the FaultPlan codec) must not pull
        # the discrete-event sim + PBFT stack into every consumer.
        import subprocess
        import sys

        code = (
            "import sys; import repro.engine; "
            "assert 'repro.sim.pbft.byzantine' not in sys.modules, 'eager sim import'"
        )
        completed = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert completed.returncode == 0, completed.stderr[-500:]

    def test_builtin_pbft_behaviours(self):
        spec = PBFTSpec(4)
        assert supports_byzantine(spec)
        assert set(registered_behaviours(spec)) == {
            "double-vote",
            "equivocate",
            "equivocate+double-vote",
            "silent",
        }
        factory = behaviour_factory("silent", spec)
        assert callable(factory)

    def test_raft_has_no_behaviours(self):
        assert not supports_byzantine(RaftSpec(3))
        with pytest.raises(InvalidConfigurationError, match="register_behaviour"):
            behaviour_factory("double-vote", RaftSpec(3))

    def test_unknown_name_lists_registered(self):
        with pytest.raises(InvalidConfigurationError, match="double-vote"):
            behaviour_factory("fnord", PBFTSpec(4))

    def test_shadowing_behaviour_invalidates_campaign_cache(self):
        # Campaign memo keys carry the *resolved* behaviour builds, so
        # re-registering a behaviour (documented: later registrations take
        # precedence) never serves the old implementation's cached
        # verdicts — the engine's estimator re-registration invariant.
        from repro.injection.behaviours import _BEHAVIOURS
        from repro.sim.pbft.node import PBFTNode

        def query():
            return SimulationQuery(
                Scenario(spec=PBFTSpec(4), fleet=uniform_fleet(4, 0.0), seed=9),
                replicas=2,
                duration=6.0,
                commands=2,
                faults=FaultPlan(adversary=Adversary(nodes=(0, 2))),
            )

        engine = ReliabilityEngine()
        first = engine.run_query(query())
        assert first.value.safety_violations == 2  # the Thm 3.1 split
        assert engine.run_query(query()).provenance.cache_hit

        def honest_build(spec):
            def make(node_id, n, scheduler, network, rng, trace):
                return PBFTNode(node_id, n, scheduler, network, rng, trace,
                                q_eq=spec.q_eq, q_per=spec.q_per,
                                q_vc=spec.q_vc, q_vc_t=spec.q_vc_t)

            return make

        before = len(_BEHAVIOURS)
        register_behaviour("double-vote", PBFTSpec, honest_build)
        register_behaviour("equivocate+double-vote", PBFTSpec, honest_build)
        try:
            shadowed = engine.run_query(query())
            assert not shadowed.provenance.cache_hit
            assert shadowed.value.safety_violations == 0  # honest "adversary"
        finally:
            del _BEHAVIOURS[: len(_BEHAVIOURS) - before]
        restored = engine.run_query(query())
        assert restored.provenance.cache_hit
        assert restored.value.safety_violations == 2

    def test_third_party_registration(self):
        from repro.protocols.base import SymmetricSpec
        from repro.sim.pbft.node import PBFTNode

        class ToySpec(SymmetricSpec):
            name = "Toy"

            def is_safe_counts(self, num_crashed, num_byzantine):
                return True

            def is_live_counts(self, num_crashed, num_byzantine):
                return True

        def build(spec):
            def make(node_id, n, scheduler, network, rng, trace):
                return PBFTNode(node_id, n, scheduler, network, rng, trace)

            return make

        register_behaviour("toy-silent", ToySpec, build)
        assert supports_byzantine(ToySpec(3))
        assert "toy-silent" in registered_behaviours(ToySpec(3))

    def test_raft_family_behaviour_without_pbft_defaults(self):
        # A third-party family registering only an accomplice behaviour can
        # still declare an adversary that avoids node 0: the unused default
        # primary_behaviour (PBFT-only) must not be resolved.
        from repro.sim.raft import raft_node_factory

        def build(spec):
            factory = raft_node_factory()

            def make(node_id, n, scheduler, network, rng, trace):
                return factory(node_id, n, scheduler, network, rng, trace)

            return make

        from repro.injection.behaviours import _BEHAVIOURS

        before = len(_BEHAVIOURS)
        register_behaviour("raft-honest-drill", RaftSpec, build)
        try:
            query = SimulationQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.0), seed=1),
                replicas=1,
                duration=4.0,
                commands=2,
                faults=FaultPlan(
                    adversary=Adversary(nodes=(1,), behaviour="raft-honest-drill"),
                    sample_faults=False,
                ),
            )
            behaviour_build, primary_build = query.behaviour_key()
            assert behaviour_build is build
            assert primary_build is None  # node 0 can never be Byzantine here
            value = ReliabilityEngine(cache_size=0).run_query(query).value
            assert value.safety_violations == 0
        finally:
            del _BEHAVIOURS[: len(_BEHAVIOURS) - before]


# ---------------------------------------------------------------------------
# Campaign determinism & equivalences
# ---------------------------------------------------------------------------
class TestCampaigns:
    def adversarial_query(self, seed=21):
        plan = FaultPlan(
            events=(
                PartitionEvent(groups=((0, 1), (2, 3)), at=2.0, heal_at=3.0),
                LossBurst(at=4.0, until=5.0, drop_probability=0.3),
                CorrelatedBurst(members=(1, 3), at=5.5, probability=0.5,
                                mean_time_to_repair=2.0),
            ),
            adversary=Adversary(nodes=(0,)),
        )
        return SimulationQuery(
            Scenario(spec=PBFTSpec(4), fleet=uniform_fleet(4, 0.1), seed=seed),
            replicas=6,
            duration=8.0,
            commands=2,
            faults=plan,
        )

    def test_adversarial_campaign_invariant_to_jobs_and_mode(self):
        baseline = (
            ReliabilityEngine(cache_size=0).run_query(self.adversarial_query()).value
        )
        for policy in (
            ExecutionPolicy(mode="thread", jobs=4),
            ExecutionPolicy(mode="thread", jobs=4, shard_trials=2),
            ExecutionPolicy(mode="process", jobs=2),
        ):
            value = (
                ReliabilityEngine(cache_size=0)
                .run_query(self.adversarial_query(), policy=policy)
                .value
            )
            assert value == baseline, policy

    def test_explicit_default_plan_matches_no_plan(self):
        scenario = Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.3), seed=17)
        bare = ReliabilityEngine(cache_size=0).run_query(
            SimulationQuery(scenario, replicas=8, duration=6.0, commands=2)
        )
        explicit = ReliabilityEngine(cache_size=0).run_query(
            SimulationQuery(
                scenario, replicas=8, duration=6.0, commands=2, faults=FaultPlan()
            )
        )
        assert explicit.value == bare.value

    def test_plans_get_distinct_cache_entries(self):
        engine = ReliabilityEngine()
        scenario = Scenario(spec=PBFTSpec(4), fleet=uniform_fleet(4, 0.0), seed=9)
        with_adversary = SimulationQuery(
            scenario, replicas=2, duration=6.0, commands=2,
            faults=FaultPlan(adversary=Adversary(nodes=(0, 2))),
        )
        without = SimulationQuery(scenario, replicas=2, duration=6.0, commands=2)
        first = engine.run_query(with_adversary)
        second = engine.run_query(without)
        assert not second.provenance.cache_hit
        assert first.value != second.value  # the adversary splits the cluster
        assert engine.run_query(with_adversary).provenance.cache_hit

    def test_partition_era_liveness_reported_separately(self):
        plan = FaultPlan(
            events=(PartitionEvent(groups=((0,), (1,), (2,)), at=0.5),),
        )
        value = ReliabilityEngine(cache_size=0).run_query(
            SimulationQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.0), seed=2),
                replicas=3,
                duration=6.0,
                commands=2,
                faults=plan,
            )
        ).value
        # A fully-isolated healthy cluster stalls on every command, and
        # every stall is attributable to the partition era.
        assert value.liveness_violations == 3
        assert value.partition_era_liveness_violations == 3
        assert value.safety_violations == 0

    def test_crash_recovery_restores_liveness(self):
        # Majority crashes at t=2 but repairs land quickly: Raft re-elects
        # and commits everything (commands are submitted before the crash
        # era ends, retried after recovery).
        plan = FaultPlan(
            events=(
                CrashStop(node=0, at=2.0, recover_at=3.0),
                CrashStop(node=1, at=2.0, recover_at=3.5),
            ),
            sample_faults=False,
        )
        value = ReliabilityEngine(cache_size=0).run_query(
            SimulationQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.0), seed=8),
                replicas=2,
                duration=12.0,
                commands=2,
                faults=plan,
            )
        ).value
        assert value.safety_violations == 0
        assert value.liveness_violations == 0
        # The terminal-window predicate called these runs dead (2 of 3
        # crashed); recovery is exactly the mismatch being measured.
        assert value.predicate_mismatches == 2


# ---------------------------------------------------------------------------
# Satellites: plan_from_config MTTR + checker partition windows
# ---------------------------------------------------------------------------
class TestPlanFromConfigMTTR:
    def test_mttr_draws_recoveries_with_duration_guard(self):
        config = FailureConfig.from_failed_indices(6, [0, 2, 4])
        plan = plan_from_config(
            config, duration=5.0, mean_time_to_repair=2.0, seed=11
        )
        assert set(plan.crash_times) == {0, 2, 4}
        for node, recover in plan.recovery_times.items():
            assert plan.crash_times[node] < recover < 5.0

    def test_mttr_none_stream_unchanged(self):
        config = FailureConfig.from_failed_indices(4, [1, 3])
        with_param = plan_from_config(config, duration=6.0, seed=3)
        legacy = plan_from_config(
            config, duration=6.0, crash_window=None, seed=3
        )
        assert with_param.crash_times == legacy.crash_times
        assert with_param.recovery_times == {}

    def test_mttr_validation(self):
        config = FailureConfig.from_failed_indices(3, [0])
        with pytest.raises(InvalidConfigurationError, match="positive"):
            plan_from_config(config, duration=5.0, mean_time_to_repair=0.0)


class TestCheckerPartitionWindows:
    def _trace(self):
        from repro.sim.trace import TraceRecorder

        trace = TraceRecorder()
        trace.record_commit(1.0, 0, 1, "a")
        trace.record_commit(1.0, 1, 1, "a")
        return trace

    def test_partition_era_split(self):
        verdict = check_completion(
            self._trace(),
            ["a", "b", "c"],
            correct_nodes=[0, 1],
            partition_windows=[(2.0, 4.0)],
            submit_times={"a": 0.5, "b": 2.5, "c": 5.0},
        )
        assert not verdict.holds
        assert set(verdict.missing) == {(0, "b"), (1, "b"), (0, "c"), (1, "c")}
        assert set(verdict.partition_era) == {(0, "b"), (1, "b")}
        assert not verdict.holds_outside_partitions

    def test_only_partition_era_missing(self):
        verdict = check_completion(
            self._trace(),
            ["a", "b"],
            correct_nodes=[0, 1],
            partition_windows=[(2.0, 4.0)],
            submit_times={"a": 0.5, "b": 3.0},
        )
        assert not verdict.holds
        assert verdict.holds_outside_partitions

    def test_defaults_unchanged(self):
        verdict = check_completion(self._trace(), ["a"], correct_nodes=[0, 1])
        assert verdict.holds
        assert verdict.partition_era == ()
        assert verdict.holds_outside_partitions


# ---------------------------------------------------------------------------
# Cluster / network hooks
# ---------------------------------------------------------------------------
class TestSimHooks:
    def test_network_degradation_hooks_validate(self):
        from repro.sim.events import EventScheduler
        from repro.sim.network import Network

        network = Network(EventScheduler(), drop_probability=0.1)
        with pytest.raises(InvalidConfigurationError):
            network.set_drop_probability(1.5)
        with pytest.raises(InvalidConfigurationError):
            network.set_extra_delay(-1.0)
        network.set_drop_probability(0.5)
        network.set_drop_probability(None)  # restores the baseline
        assert network._drop_probability == 0.1

    def test_cluster_partition_schedule_records_trace(self):
        from repro.sim.cluster import Cluster
        from repro.sim.raft import raft_node_factory

        cluster = Cluster(3, raft_node_factory(), seed=1)
        cluster.partition_at([(0,), (1, 2)], 1.0)
        cluster.heal_partition_at(2.0)
        cluster.set_drop_probability_at(0.2, 1.5)
        cluster.set_extra_delay_at(0.01, 1.5)
        cluster.start()
        cluster.run_until(3.0)
        kinds = {event.kind for event in cluster.trace.events}
        assert {"partition", "heal", "net-loss", "net-delay"} <= kinds

    def test_node_overrides_validate_range(self):
        from repro.sim.cluster import Cluster
        from repro.sim.raft import raft_node_factory

        with pytest.raises(InvalidConfigurationError, match="override"):
            Cluster(3, raft_node_factory(), seed=1,
                    node_overrides={5: raft_node_factory()})

    def test_node_overrides_do_not_perturb_other_streams(self):
        # Overriding node 0's factory must leave nodes 1..n-1 with the
        # exact streams they had without the override.
        from repro.sim.cluster import Cluster
        from repro.sim.raft import raft_node_factory

        plain = Cluster(3, raft_node_factory(), seed=9)
        overridden = Cluster(
            3, raft_node_factory(), seed=9, node_overrides={0: raft_node_factory()}
        )
        for a, b in zip(plain.nodes[1:], overridden.nodes[1:]):
            assert a._rng.random() == b._rng.random()
