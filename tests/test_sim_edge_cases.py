"""Simulator edge cases: recovery timing, partitions, churn, scale.

These scenarios exercise interleavings that the happy-path suites miss —
the places real consensus implementations historically broke.
"""

from __future__ import annotations

import pytest

from repro.sim import Cluster, audit_run, run_scenario
from repro.sim.checker import check_agreement, check_completion
from repro.sim.network import LogNormalLatency, UniformLatency
from repro.sim.pbft import pbft_node_factory
from repro.sim.raft import Role, raft_node_factory


class TestRaftChurn:
    def test_repeated_leader_assassination(self):
        """Kill every leader as soon as it appears; safety must hold."""
        cluster = Cluster(5, raft_node_factory(), seed=1)
        cluster.start()
        killed: set[int] = set()
        for round_end in (1.0, 2.0, 3.0):
            cluster.run_until(round_end)
            leaders = [e.node_id for e in cluster.trace.events_of_kind("leader")]
            if leaders and leaders[-1] not in killed and len(killed) < 2:
                victim = leaders[-1]
                killed.add(victim)
                cluster.crash_at(victim, round_end + 0.05)
        commands = [f"c{i}" for i in range(6)]
        at = 3.5
        for command in commands:
            cluster.submit(command, at=at)
            at += 0.2
        cluster.run_until(15.0)
        correct = sorted(cluster.correct_node_ids())
        verdict = audit_run(cluster.trace, commands, correct_nodes=correct)
        assert verdict.safe
        assert verdict.live  # 3 of 5 still form quorums

    def test_crash_recover_crash_cycles(self):
        cluster = Cluster(3, raft_node_factory(), seed=2)
        for cycle in range(3):
            cluster.crash_at(2, 1.0 + cycle * 2.0)
            cluster.recover_at(2, 2.0 + cycle * 2.0)
        commands = [f"cyc{i}" for i in range(8)]
        trace = run_scenario(cluster, commands=commands, duration=12.0)
        verdict = audit_run(trace, commands, correct_nodes=range(3))
        assert verdict.safe and verdict.live

    def test_all_crash_then_all_recover(self):
        """Full blackout: persistent state must carry committed entries."""
        cluster = Cluster(3, raft_node_factory(), seed=3)
        cluster.start()
        cluster.submit("before", at=0.5)
        cluster.run_until(2.0)
        for node in range(3):
            cluster.crash_at(node, 2.0 + 0.01 * node)
        for node in range(3):
            cluster.recover_at(node, 3.0 + 0.01 * node)
        cluster.submit("after", at=4.0)
        cluster.run_until(12.0)
        verdict = audit_run(cluster.trace, ["before", "after"], correct_nodes=range(3))
        assert verdict.safe and verdict.live

    def test_symmetric_partition_no_split_brain(self):
        """2-2-1 partition: no majority anywhere, no commits anywhere."""
        cluster = Cluster(5, raft_node_factory(), seed=4)
        cluster.start()
        cluster.run_until(0.5)
        pre_commits = len(cluster.trace.commits)
        cluster.network.set_partition([[0, 1], [2, 3], [4]])
        cluster.submit("split", at=1.0)
        cluster.run_until(6.0)
        assert len(cluster.trace.commits) == pre_commits
        assert check_agreement(cluster.trace).holds

    def test_minority_partition_keeps_majority_side_live(self):
        cluster = Cluster(5, raft_node_factory(), seed=5)
        cluster.start()
        cluster.run_until(0.5)
        cluster.network.set_partition([[0, 1, 2], [3, 4]])
        commands = ["maj1", "maj2"]
        at = 1.0
        for command in commands:
            cluster.submit(command, at=at)
            at += 0.2
        cluster.run_until(10.0)
        liveness = check_completion(cluster.trace, commands, correct_nodes=[0, 1, 2])
        assert liveness.holds
        assert check_agreement(cluster.trace).holds


class TestNetworkConditions:
    def test_heavy_tail_latency_still_safe_live(self):
        cluster = Cluster(
            5,
            raft_node_factory(),
            latency=LogNormalLatency(median=0.005, sigma=1.2),
            seed=6,
        )
        commands = [f"lat{i}" for i in range(6)]
        trace = run_scenario(cluster, commands=commands, duration=20.0)
        verdict = audit_run(trace, commands, correct_nodes=range(5))
        assert verdict.safe and verdict.live

    def test_lossy_network_raft(self):
        cluster = Cluster(
            5,
            raft_node_factory(),
            latency=UniformLatency(0.001, 0.01),
            drop_probability=0.2,
            seed=7,
        )
        commands = [f"drop{i}" for i in range(5)]
        trace = run_scenario(cluster, commands=commands, duration=25.0)
        verdict = audit_run(trace, commands, correct_nodes=range(5))
        assert verdict.safe and verdict.live

    def test_lossy_network_pbft(self):
        cluster = Cluster(
            4,
            pbft_node_factory(),
            drop_probability=0.15,
            seed=8,
        )
        commands = [f"pl{i}" for i in range(3)]
        trace = run_scenario(cluster, commands=commands, duration=30.0)
        verdict = audit_run(trace, commands, correct_nodes=range(4))
        assert verdict.safe and verdict.live


class TestScale:
    def test_eleven_node_raft(self):
        cluster = Cluster(11, raft_node_factory(), seed=9)
        for node in (0, 1, 2, 3, 4):
            cluster.crash_at(node, 1.0 + 0.1 * node)
        commands = [f"big{i}" for i in range(5)]
        trace = run_scenario(cluster, commands=commands, duration=15.0)
        correct = sorted(cluster.correct_node_ids())
        verdict = audit_run(trace, commands, correct_nodes=correct)
        assert verdict.safe and verdict.live  # 6 of 11 remain

    def test_ten_node_pbft(self):
        cluster = Cluster(10, pbft_node_factory(), seed=10)
        cluster.crash_at(5, 0.5)
        cluster.crash_at(6, 0.5)
        commands = [f"bp{i}" for i in range(3)]
        trace = run_scenario(cluster, commands=commands, duration=15.0)
        correct = sorted(cluster.correct_node_ids())
        verdict = audit_run(trace, commands, correct_nodes=correct)
        assert verdict.safe and verdict.live  # f=3 tolerates 2 crashes

    def test_stepped_down_leader_rejoins_as_follower(self):
        cluster = Cluster(5, raft_node_factory(), seed=11)
        cluster.start()
        cluster.run_until(1.0)
        first = [e.node_id for e in cluster.trace.events_of_kind("leader")][-1]
        cluster.crash_at(first, 1.2)
        cluster.recover_at(first, 4.0)
        cluster.run_until(10.0)
        node = cluster.nodes[first]
        later_leaders = [
            e.node_id for e in cluster.trace.events_of_kind("leader") if e.time > 1.2
        ]
        if later_leaders and later_leaders[-1] != first:
            assert node.role is not Role.LEADER
