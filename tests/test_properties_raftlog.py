"""Property-based tests for the Raft log (the §5.3 invariants).

The replicated log is where Raft's safety argument lives; these laws check
the conflict-truncation semantics against arbitrary message interleavings.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.raft.log import LogEntry, RaftLog

entries = st.builds(
    LogEntry,
    term=st.integers(min_value=1, max_value=6),
    value=st.integers(min_value=0, max_value=50),
)


def _build_log(items) -> RaftLog:
    log = RaftLog()
    term = 0
    for entry in items:
        # Terms in a real log are non-decreasing; enforce it here.
        term = max(term, entry.term)
        log.append(LogEntry(term, entry.value))
    return log


class TestAppendLaws:
    @given(st.lists(entries, max_size=20))
    def test_terms_non_decreasing(self, items):
        log = _build_log(items)
        terms = [log.term_at(i) for i in range(1, log.last_index + 1)]
        assert terms == sorted(terms)

    @given(st.lists(entries, max_size=20))
    def test_last_index_tracks_length(self, items):
        log = _build_log(items)
        assert log.last_index == len(items)


class TestOverwriteLaws:
    @given(st.lists(entries, min_size=1, max_size=12), st.data())
    def test_overwrite_is_idempotent(self, items, data):
        log = _build_log(items)
        prev = data.draw(st.integers(min_value=0, max_value=log.last_index))
        suffix = tuple(
            LogEntry(term=log.last_term + 1, value=i) for i in range(data.draw(st.integers(0, 4)))
        )
        log.overwrite_from(prev, suffix)
        snapshot = [log.entry_at(i) for i in range(1, log.last_index + 1)]
        log.overwrite_from(prev, suffix)
        assert [log.entry_at(i) for i in range(1, log.last_index + 1)] == snapshot

    @given(st.lists(entries, min_size=1, max_size=12), st.data())
    def test_overwrite_installs_suffix(self, items, data):
        log = _build_log(items)
        prev = data.draw(st.integers(min_value=0, max_value=log.last_index))
        new_term = log.last_term + 1
        suffix = tuple(LogEntry(new_term, value=100 + i) for i in range(3))
        log.overwrite_from(prev, suffix)
        for offset, entry in enumerate(suffix):
            assert log.entry_at(prev + offset + 1) == entry

    @given(st.lists(entries, min_size=2, max_size=12), st.data())
    def test_overwrite_preserves_prefix(self, items, data):
        log = _build_log(items)
        prev = data.draw(st.integers(min_value=1, max_value=log.last_index))
        before_prefix = [log.entry_at(i) for i in range(1, prev + 1)]
        suffix = (LogEntry(log.last_term + 1, "new"),)
        log.overwrite_from(prev, suffix)
        assert [log.entry_at(i) for i in range(1, prev + 1)] == before_prefix


class TestUpToDateLaws:
    @given(st.lists(entries, max_size=12), st.lists(entries, max_size=12))
    def test_up_to_date_is_total_order(self, items_a, items_b):
        """For any two logs, at least one is up-to-date w.r.t. the other."""
        log_a = _build_log(items_a)
        log_b = _build_log(items_b)
        a_accepts_b = log_a.is_up_to_date(log_b.last_index, log_b.last_term)
        b_accepts_a = log_b.is_up_to_date(log_a.last_index, log_a.last_term)
        assert a_accepts_b or b_accepts_a

    @given(st.lists(entries, max_size=12))
    def test_log_is_up_to_date_with_itself(self, items):
        log = _build_log(items)
        assert log.is_up_to_date(log.last_index, log.last_term)

    @given(st.lists(entries, max_size=12))
    def test_extension_is_up_to_date(self, items):
        log = _build_log(items)
        assert log.is_up_to_date(log.last_index + 1, max(log.last_term, 1))


class TestMatchingLaws:
    @given(st.lists(entries, min_size=1, max_size=12), st.data())
    def test_matches_own_entries(self, items, data):
        log = _build_log(items)
        index = data.draw(st.integers(min_value=0, max_value=log.last_index))
        assert log.matches(index, log.term_at(index))

    @given(st.lists(entries, min_size=1, max_size=12))
    def test_never_matches_beyond_end(self, items):
        log = _build_log(items)
        assert not log.matches(log.last_index + 1, 1)
