"""Unit tests for the fault-curve hierarchy."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidConfigurationError, InvalidProbabilityError
from repro.faults.curves import (
    HOURS_PER_YEAR,
    BathtubCurve,
    ConstantHazard,
    EmpiricalCurve,
    ExponentialCurve,
    PiecewiseConstantCurve,
    ScaledCurve,
    WeibullCurve,
    curve_from_samples,
)


class TestConstantHazard:
    def test_window_probability_matches_exponential(self):
        curve = ConstantHazard(1e-4)
        assert curve.failure_probability(0, 1000) == pytest.approx(1 - math.exp(-0.1))

    def test_memorylessness(self):
        curve = ConstantHazard(2e-5)
        assert curve.failure_probability(0, 500) == pytest.approx(
            curve.failure_probability(10_000, 10_500)
        )

    def test_from_afr_round_trip(self):
        curve = ConstantHazard.from_afr(0.04)
        assert curve.annualized_failure_rate() == pytest.approx(0.04)

    def test_from_window_probability_round_trip(self):
        curve = ConstantHazard.from_window_probability(0.08, 720.0)
        assert curve.failure_probability(0, 720.0) == pytest.approx(0.08)

    def test_zero_rate_never_fails(self):
        curve = ConstantHazard(0.0)
        assert curve.failure_probability(0, 1e9) == 0.0
        assert curve.sample_failure_time(seed=1, horizon=1e6) == math.inf

    def test_negative_rate_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            ConstantHazard(-1.0)

    def test_invalid_afr_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            ConstantHazard.from_afr(1.0)

    def test_exponential_alias(self):
        assert ExponentialCurve is ConstantHazard

    def test_survival_plus_failure_is_one(self):
        curve = ConstantHazard(3e-5)
        total = curve.survival_probability(0, 2000) + curve.failure_probability(0, 2000)
        assert total == pytest.approx(1.0)

    def test_reversed_window_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            ConstantHazard(1e-5).cumulative_hazard(10.0, 5.0)


class TestWeibull:
    def test_shape_one_is_exponential(self):
        weibull = WeibullCurve(shape=1.0, scale_hours=10_000.0)
        const = ConstantHazard(1.0 / 10_000.0)
        assert weibull.failure_probability(0, 5000) == pytest.approx(
            const.failure_probability(0, 5000)
        )

    def test_increasing_hazard_for_shape_above_one(self):
        curve = WeibullCurve(shape=3.0, scale_hours=1000.0)
        assert curve.hazard(2000.0) > curve.hazard(500.0)

    def test_decreasing_hazard_for_shape_below_one(self):
        curve = WeibullCurve(shape=0.5, scale_hours=1000.0)
        assert curve.hazard(2000.0) < curve.hazard(100.0)

    def test_cumulative_hazard_closed_form(self):
        curve = WeibullCurve(shape=2.0, scale_hours=100.0)
        assert curve.cumulative_hazard(0, 200.0) == pytest.approx(4.0)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidConfigurationError):
            WeibullCurve(shape=0.0, scale_hours=100.0)
        with pytest.raises(InvalidConfigurationError):
            WeibullCurve(shape=1.0, scale_hours=-5.0)


class TestPiecewise:
    def test_integrates_segments_exactly(self):
        curve = PiecewiseConstantCurve((0.0, 10.0, 20.0), (1e-3, 5e-3, 2e-3))
        expected = 10 * 1e-3 + 10 * 5e-3 + 5 * 2e-3
        assert curve.cumulative_hazard(0.0, 25.0) == pytest.approx(expected)

    def test_hazard_lookup(self):
        curve = PiecewiseConstantCurve((0.0, 10.0), (1e-3, 9e-3))
        assert curve.hazard(5.0) == 1e-3
        assert curve.hazard(15.0) == 9e-3

    def test_final_rate_extends_forever(self):
        curve = PiecewiseConstantCurve((0.0, 1.0), (0.0, 2e-3))
        assert curve.cumulative_hazard(1.0, 101.0) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            PiecewiseConstantCurve((1.0, 2.0), (1e-3, 1e-3))  # must start at 0
        with pytest.raises(InvalidConfigurationError):
            PiecewiseConstantCurve((0.0, 0.0), (1e-3, 1e-3))  # not increasing
        with pytest.raises(InvalidConfigurationError):
            PiecewiseConstantCurve((0.0,), (-1e-3,))  # negative rate


class TestBathtub:
    def test_bathtub_shape(self):
        curve = BathtubCurve()
        infant = curve.hazard(10.0)
        useful = curve.hazard(20_000.0)
        wearout = curve.hazard(80_000.0)
        assert infant > useful
        assert wearout > useful

    def test_infant_weight_scales_burn_in(self):
        gentle = BathtubCurve(infant_weight=0.01)
        harsh = BathtubCurve(infant_weight=0.10)
        assert harsh.failure_probability(0, 2000) > gentle.failure_probability(0, 2000)

    def test_useful_life_afr_near_baseline(self):
        curve = BathtubCurve()
        # Year 2 is useful life: AFR should be within 2x of the 4% floor.
        afr = curve.failure_probability(HOURS_PER_YEAR, 2 * HOURS_PER_YEAR)
        assert 0.03 < afr < 0.09


class TestEmpirical:
    def test_interpolation(self):
        curve = curve_from_samples([0.0, 100.0], [1e-3, 3e-3])
        assert curve.hazard(50.0) == pytest.approx(2e-3)

    def test_constant_extension_beyond_knots(self):
        curve = curve_from_samples([0.0, 100.0], [1e-3, 3e-3])
        assert curve.hazard(500.0) == pytest.approx(3e-3)

    def test_cumulative_matches_trapezoid(self):
        curve = curve_from_samples([0.0, 100.0], [0.0, 2e-3])
        # Linear ramp: integral over [0, 100] = 0.5 * 100 * 2e-3
        assert curve.cumulative_hazard(0.0, 100.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            EmpiricalCurve((0.0,), (1e-3,))
        with pytest.raises(InvalidConfigurationError):
            EmpiricalCurve((0.0, 0.0), (1e-3, 1e-3))


class TestCombinators:
    def test_scaled_curve(self):
        base = ConstantHazard(1e-4)
        scaled = base.scaled(3.0)
        assert scaled.cumulative_hazard(0, 100) == pytest.approx(3e-2)

    def test_negative_scale_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            ScaledCurve(ConstantHazard(1e-4), -1.0)

    def test_sum_curve(self):
        combined = ConstantHazard(1e-4) + ConstantHazard(2e-4)
        assert combined.hazard(0.0) == pytest.approx(3e-4)
        assert combined.cumulative_hazard(0, 10) == pytest.approx(3e-3)


class TestSampling:
    def test_sample_matches_distribution(self):
        curve = ConstantHazard(1e-3)
        rng = np.random.default_rng(42)
        horizon = 2000.0
        samples = [curve.sample_failure_time(rng, horizon=horizon) for _ in range(3000)]
        failed_fraction = sum(1 for t in samples if math.isfinite(t)) / len(samples)
        assert failed_fraction == pytest.approx(curve.failure_probability(0, horizon), abs=0.02)

    def test_sample_deterministic_under_seed(self):
        curve = WeibullCurve(2.0, 5_000.0)
        a = curve.sample_failure_time(seed=7, horizon=20_000.0)
        b = curve.sample_failure_time(seed=7, horizon=20_000.0)
        assert a == b

    def test_sampled_times_within_horizon(self):
        curve = ConstantHazard(1e-2)
        rng = np.random.default_rng(3)
        for _ in range(100):
            t = curve.sample_failure_time(rng, horizon=100.0)
            assert t == math.inf or 0.0 <= t <= 100.0
