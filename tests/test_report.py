"""Tests for the reproduction-report generator."""

from __future__ import annotations

from repro.report import claims_text, evaluate_claims, full_report, table1_text, table2_text


class TestTables:
    def test_table1_contains_all_rows(self):
        text = table1_text()
        for n in (4, 5, 7, 8):
            assert f"\n{n}  " in text
        assert "99.99901%" in text

    def test_table2_contains_all_rows(self):
        text = table2_text()
        for n in (3, 5, 7, 9):
            assert f"\n{n}  " in text
        assert "99.970%" in text


class TestClaims:
    def test_all_claims_match(self):
        claims = evaluate_claims()
        assert len(claims) >= 11
        failing = [c.claim_id for c in claims if not c.matches]
        assert not failing, f"claims regressed: {failing}"

    def test_claim_ids_unique(self):
        claims = evaluate_claims()
        ids = [c.claim_id for c in claims]
        assert len(set(ids)) == len(ids)

    def test_claims_text_renders(self):
        text = claims_text()
        assert "E5a" in text
        assert "NO" not in text.split("match")[1]


class TestFullReport:
    def test_sections_present(self):
        report = full_report()
        assert "Table 1" in report
        assert "Table 2" in report
        assert "In-text claims" in report

    def test_cli_report_exit_code(self, capsys):
        from repro.cli import main

        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out
