"""Unit tests for the Raft spec (Theorem 3.2)."""

from __future__ import annotations

import pytest

from repro.analysis.config import FailureConfig, FaultKind
from repro.errors import InvalidConfigurationError
from repro.protocols.raft import FlexibleRaftSpec, RaftSpec, majority


class TestMajority:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (9, 5)])
    def test_values(self, n, expected):
        assert majority(n) == expected


class TestTheorem32Safety:
    def test_majority_quorums_structurally_safe(self):
        for n in (1, 3, 5, 7, 9):
            assert RaftSpec(n).structurally_safe

    def test_small_view_change_quorum_unsafe(self):
        # N=5, Qvc=2: two disjoint leader elections possible.
        spec = RaftSpec(5, q_per=4, q_vc=2)
        assert not spec.structurally_safe
        assert not spec.is_safe_counts(0, 0)

    def test_non_intersecting_persistence_unsafe(self):
        # N=5, Qper=2, Qvc=3: 2+3 = 5, not > 5.
        spec = RaftSpec(5, q_per=2, q_vc=3)
        assert not spec.structurally_safe

    def test_flexible_pair_safe(self):
        # N=5, Qper=2, Qvc=4: 6 > 5 and 8 > 5 — Flexible-Paxos legal.
        spec = RaftSpec(5, q_per=2, q_vc=4)
        assert spec.structurally_safe

    def test_crashes_never_violate_safety(self):
        spec = RaftSpec(5)
        for crashed in range(6):
            assert spec.is_safe_counts(crashed, 0)

    def test_byzantine_presence_breaks_cft_safety(self):
        spec = RaftSpec(5)
        assert not spec.is_safe_counts(0, 1)


class TestTheorem32Liveness:
    def test_live_up_to_minority_failures(self):
        spec = RaftSpec(5)
        assert spec.is_live_counts(2, 0)
        assert not spec.is_live_counts(3, 0)

    def test_byzantine_counts_as_failed_for_liveness(self):
        spec = RaftSpec(5)
        assert spec.is_live_counts(1, 1)
        assert not spec.is_live_counts(2, 1)

    def test_larger_quorum_needs_more_correct(self):
        spec = RaftSpec(5, q_per=4, q_vc=3)
        assert spec.is_live_counts(1, 0)
        assert not spec.is_live_counts(2, 0)


class TestConfigInterface:
    def test_config_predicates_match_counts(self):
        spec = RaftSpec(5)
        config = FailureConfig.from_failed_indices(5, [0, 4])
        assert spec.is_safe(config)
        assert spec.is_live(config)
        config3 = FailureConfig.from_failed_indices(5, [0, 2, 4])
        assert not spec.is_live(config3)

    def test_wrong_size_config_rejected(self):
        spec = RaftSpec(3)
        with pytest.raises(InvalidConfigurationError):
            spec.is_safe(FailureConfig.all_correct(4))


class TestDurability:
    def test_durable_below_quorum_failures(self):
        spec = RaftSpec(7)
        assert spec.is_durable_counts(3)
        assert not spec.is_durable_counts(4)


class TestValidationAndRepr:
    def test_quorum_bounds(self):
        with pytest.raises(InvalidConfigurationError):
            RaftSpec(3, q_per=0)
        with pytest.raises(InvalidConfigurationError):
            RaftSpec(3, q_vc=4)

    def test_nonpositive_n(self):
        with pytest.raises(InvalidConfigurationError):
            RaftSpec(0)

    def test_flexible_subclass_name(self):
        spec = FlexibleRaftSpec(5, 2, 4)
        assert spec.name == "FlexRaft"
        assert repr(spec).startswith("RaftSpec") or "q_per=2" in repr(spec)
