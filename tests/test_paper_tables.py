"""Golden tests: every table cell and quantitative claim in the paper.

These pin the library's output to the printed numbers in "Real Life Is
Uncertain. Consensus Should Be Too!" (HotOS '25) at the paper's own
precision.  If any of these fail, the reproduction has regressed.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze, nines, predicate_probability
from repro.faults.mixture import NodeModel, byzantine_fleet, heterogeneous_fleet, uniform_fleet
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec
from repro.protocols.reliability_aware import (
    ObliviousDurabilityRaftSpec,
    ReliabilityAwareRaftSpec,
)


def _pct(value: float, digits: int) -> float:
    """Round a probability to `digits` decimals of its percentage form."""
    return round(value * 100.0, digits)


class TestTable1PBFT:
    """Table 1: PBFT reliability, uniform p_u = 1%, all failures Byzantine."""

    # (n, safe%, live%, digits_safe, digits_live) at the paper's precision
    ROWS = [
        (4, 99.94, 99.94, 2, 2),
        (5, 99.9990, 99.90, 4, 2),
        (7, 99.997, 99.997, 3, 3),
        (8, 99.99993, 99.995, 5, 3),
    ]

    @pytest.mark.parametrize("n,safe,live,ds,dl", ROWS)
    def test_row(self, n, safe, live, ds, dl):
        result = analyze(PBFTSpec(n), byzantine_fleet(n, 0.01))
        assert _pct(result.safe.value, ds) == pytest.approx(safe)
        assert _pct(result.live.value, dl) == pytest.approx(live)
        # Safe&Live equals the Live column everywhere in Table 1.
        assert _pct(result.safe_and_live.value, dl) == pytest.approx(live)

    def test_quorum_columns(self):
        for n, q, t in ((4, 3, 2), (5, 4, 2), (7, 5, 3), (8, 6, 3)):
            spec = PBFTSpec(n)
            assert (spec.q_eq, spec.q_per, spec.q_vc, spec.q_vc_t) == (q, q, q, t)


class TestTable2Raft:
    """Table 2: Raft S&L for N ∈ {3,5,7,9}, p ∈ {1,2,4,8}%."""

    ROWS = {
        3: [(0.01, 99.97, 2), (0.02, 99.88, 2), (0.04, 99.53, 2), (0.08, 98.18, 2)],
        5: [(0.01, 99.9990, 4), (0.02, 99.992, 3), (0.04, 99.94, 2), (0.08, 99.55, 2)],
        7: [(0.01, 99.99997, 5), (0.02, 99.9995, 4), (0.04, 99.992, 3), (0.08, 99.88, 2)],
        9: [(0.01, 99.999999, 6), (0.02, 99.99996, 5), (0.04, 99.9988, 4), (0.08, 99.97, 2)],
    }

    @pytest.mark.parametrize(
        "n,p,expected,digits",
        [(n, p, e, d) for n, cells in ROWS.items() for p, e, d in cells],
    )
    def test_cell(self, n, p, expected, digits):
        result = analyze(RaftSpec(n), uniform_fleet(n, p))
        # Within one unit of the paper's last printed digit (the paper
        # truncates some cells, e.g. 99.99887 -> "99.9988").
        assert abs(result.safe_and_live.value * 100 - expected) <= 10.0**-digits + 1e-12

    def test_quorum_columns(self):
        for n, q in ((3, 2), (5, 3), (7, 4), (9, 5)):
            spec = RaftSpec(n)
            assert (spec.q_per, spec.q_vc) == (q, q)


class TestIntroClaims:
    def test_raft_three_nodes_only_three_nines(self):
        """§1: 'Raft ... is only 99.97% safe and live in three node
        deployments when nodes suffer a 1% failure rate.'"""
        result = analyze(RaftSpec(3), uniform_fleet(3, 0.01))
        assert _pct(result.safe_and_live.value, 2) == pytest.approx(99.97)
        assert 3.0 <= nines(result.safe_and_live.value) < 4.0

    def test_nine_cheap_nodes_match_three_reliable(self):
        """§1/§3: 9 nodes at 8% give the same 99.97% as 3 nodes at 1%."""
        reliable = analyze(RaftSpec(3), uniform_fleet(3, 0.01))
        cheap = analyze(RaftSpec(9), uniform_fleet(9, 0.08))
        assert _pct(cheap.safe_and_live.value, 2) == pytest.approx(99.97)
        # The 9-node cluster is at least as reliable.
        assert cheap.safe_and_live.value >= reliable.safe_and_live.value - 5e-5

    def test_cost_reduction_factor(self):
        """§1: '10× cheaper ... yields a 3× reduction in cost.'"""
        reliable_cost = 3 * 1.0
        cheap_cost = 9 * 0.1
        assert reliable_cost / cheap_cost == pytest.approx(10.0 / 3.0)


class TestSection3Claims:
    def test_random_five_node_quorum_ten_nines(self):
        """§3: N=100, p=1%: a 5-node sample contains a correct node with
        ten nines."""
        from repro.quorums.committee import prob_committee_contains_correct

        p_ok = prob_committee_contains_correct(0.01, 5)
        assert 1.0 - p_ok == pytest.approx(1e-10)
        assert nines(p_ok) == pytest.approx(10.0)

    def test_heterogeneous_upgrade_barely_helps_oblivious_raft(self):
        """§3: 7 nodes @8% = 99.88%; upgrading 3 nodes to 1% only ~99.98%."""
        base = analyze(RaftSpec(7), uniform_fleet(7, 0.08))
        assert _pct(base.safe_and_live.value, 2) == pytest.approx(99.88)
        upgraded_fleet = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])
        upgraded = analyze(RaftSpec(7), upgraded_fleet)
        assert 99.97 <= _pct(upgraded.safe_and_live.value, 2) <= 99.99

    def test_pinned_quorums_reach_99994_durability(self):
        """§3: requiring one reliable node per quorum -> 99.994% durability."""
        fleet = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])
        pinned = ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], require_pinned=1)
        durability = predicate_probability(fleet, pinned.is_durable)
        assert _pct(durability, 3) == pytest.approx(99.994)

    def test_pinned_beats_oblivious_durability(self):
        fleet = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])
        oblivious = ObliviousDurabilityRaftSpec(7)
        pinned = ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], require_pinned=1)
        d_oblivious = predicate_probability(fleet, oblivious.is_durable)
        d_pinned = predicate_probability(fleet, pinned.is_durable)
        assert d_pinned > d_oblivious

    def test_five_node_pbft_safety_improvement_over_four(self):
        """§3: 5-node PBFT is 42–60× safer than 4-node, ~1.67× less live."""
        four = analyze(PBFTSpec(4), byzantine_fleet(4, 0.01))
        five = analyze(PBFTSpec(5), byzantine_fleet(5, 0.01))
        safety_gain = (1 - four.safe.value) / (1 - five.safe.value)
        liveness_loss = (1 - five.live.value) / (1 - four.live.value)
        assert 42.0 <= safety_gain <= 70.0  # the paper's upper bound is 60x at p=1%
        assert liveness_loss == pytest.approx(1.67, abs=0.05)

    def test_five_node_pbft_safer_than_seven(self):
        """§3: 'the 5-node system is more safe than a 7-node system.'"""
        five = analyze(PBFTSpec(5), byzantine_fleet(5, 0.01))
        seven = analyze(PBFTSpec(7), byzantine_fleet(7, 0.01))
        assert five.safe.value > seven.safe.value


class TestSection4Claims:
    def test_half_chance_of_ten_failures_in_hundred(self):
        """§4: N=100, p=10% -> ~50% chance of >= |Qper|=10 faults."""
        from repro.quorums.intersection import prob_failure_count_reaches

        p = prob_failure_count_reaches(100, 0.10, 10)
        assert p == pytest.approx(0.55, abs=0.06)  # 54.9% exactly; paper says ~50%

    def test_one_in_ten_billion_wipeout(self):
        """§4: covering the exact persistence quorum has probability 1e-10."""
        from repro.quorums.intersection import prob_fixed_quorum_wiped_out

        assert prob_fixed_quorum_wiped_out([0.10] * 10) == pytest.approx(1e-10)
