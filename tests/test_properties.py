"""Property-based tests (hypothesis) for core invariants.

These encode the *laws* the analysis engine must respect regardless of
input: estimator agreement, probability monotonicities, quorum axioms and
the safety/liveness trade-off the paper's §3 is built on.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.counting import counting_reliability, joint_count_pmf, poisson_binomial_pmf
from repro.analysis.exact import exact_reliability
from repro.analysis.result import from_nines, nines
from repro.faults.curves import ConstantHazard, WeibullCurve
from repro.faults.mixture import Fleet, NodeModel, uniform_fleet
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec
from repro.quorums.probabilistic import ProbabilisticQuorums

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
small_probabilities = st.floats(min_value=0.0, max_value=0.4, allow_nan=False)


@st.composite
def fleets(draw, max_n=7, byzantine=False):
    n = draw(st.integers(min_value=1, max_value=max_n))
    nodes = []
    for _ in range(n):
        p_crash = draw(small_probabilities)
        p_byz = draw(small_probabilities) if byzantine else 0.0
        assume(p_crash + p_byz <= 1.0)
        nodes.append(NodeModel(p_crash=p_crash, p_byzantine=p_byz))
    return Fleet(tuple(nodes))


class TestPoissonBinomialLaws:
    @given(st.lists(probabilities, min_size=0, max_size=30))
    def test_pmf_is_distribution(self, probs):
        pmf = poisson_binomial_pmf(probs)
        assert np.all(pmf >= -1e-12)
        assert pmf.sum() == pytest.approx(1.0)

    @given(st.lists(probabilities, min_size=1, max_size=20))
    def test_mean_equals_sum_of_probabilities(self, probs):
        pmf = poisson_binomial_pmf(probs)
        mean = float(sum(k * p for k, p in enumerate(pmf)))
        assert mean == pytest.approx(sum(probs), abs=1e-9)

    @given(fleets(byzantine=True))
    def test_joint_pmf_is_distribution(self, fleet):
        pmf = joint_count_pmf(fleet)
        assert np.all(pmf >= -1e-12)
        assert pmf.sum() == pytest.approx(1.0)


class TestEstimatorAgreement:
    @settings(max_examples=30, deadline=None)
    @given(fleets(max_n=6, byzantine=True))
    def test_counting_equals_exact_for_pbft(self, fleet):
        spec = PBFTSpec(fleet.n) if fleet.n >= 4 else None
        assume(spec is not None)
        counted = counting_reliability(spec, fleet)
        exact = exact_reliability(spec, fleet)
        assert counted.safe.value == pytest.approx(exact.safe.value, abs=1e-9)
        assert counted.live.value == pytest.approx(exact.live.value, abs=1e-9)
        assert counted.safe_and_live.value == pytest.approx(
            exact.safe_and_live.value, abs=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(fleets(max_n=7))
    def test_counting_equals_exact_for_raft(self, fleet):
        spec = RaftSpec(fleet.n)
        counted = counting_reliability(spec, fleet)
        exact = exact_reliability(spec, fleet)
        assert counted.safe_and_live.value == pytest.approx(
            exact.safe_and_live.value, abs=1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(fleets(max_n=6, byzantine=True))
    def test_safe_and_live_bounded_by_both(self, fleet):
        assume(fleet.n >= 4)
        result = counting_reliability(PBFTSpec(fleet.n), fleet)
        assert result.safe_and_live.value <= result.safe.value + 1e-12
        assert result.safe_and_live.value <= result.live.value + 1e-12


class TestMonotonicityLaws:
    @given(
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.001, max_value=0.2),
        st.floats(min_value=0.0, max_value=0.2),
    )
    def test_reliability_decreases_with_failure_probability(self, half_n, p, extra):
        n = 2 * half_n + 1
        better = counting_reliability(RaftSpec(n), uniform_fleet(n, p))
        worse = counting_reliability(RaftSpec(n), uniform_fleet(n, min(p + extra, 0.4)))
        assert worse.safe_and_live.value <= better.safe_and_live.value + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=5), st.floats(min_value=0.001, max_value=0.3))
    def test_safety_rises_liveness_falls_with_quorum_size(self, half_n, p):
        """The paper's hidden trade-off, as a law: growing PBFT quorums
        never hurts safety and never helps liveness."""
        n = 3 * half_n + 1
        fleet = uniform_fleet(n, p, byzantine_fraction=1.0)
        base_quorum = (n + (n - 1) // 3 + 2) // 2
        assume(base_quorum + 1 <= n)
        small = PBFTSpec(n, q_eq=base_quorum, q_per=base_quorum, q_vc=base_quorum)
        large = PBFTSpec(n, q_eq=base_quorum + 1, q_per=base_quorum + 1, q_vc=base_quorum + 1)
        r_small = counting_reliability(small, fleet)
        r_large = counting_reliability(large, fleet)
        assert r_large.safe.value >= r_small.safe.value - 1e-12
        assert r_large.live.value <= r_small.live.value + 1e-12

    @given(st.integers(min_value=1, max_value=5), st.floats(min_value=0.001, max_value=0.3))
    def test_bigger_cluster_same_quorum_margin_more_live(self, half_n, p):
        n = 2 * half_n + 1
        small = counting_reliability(RaftSpec(n), uniform_fleet(n, p))
        big = counting_reliability(RaftSpec(n + 2), uniform_fleet(n + 2, p))
        assert big.live.value >= small.live.value - 1e-12


class TestNinesLaws:
    @given(st.floats(min_value=0.0, max_value=0.999999999))
    def test_round_trip(self, p):
        assert from_nines(nines(p)) == pytest.approx(p, abs=1e-9)

    @given(st.floats(min_value=0.5, max_value=0.9999), st.floats(min_value=0.0, max_value=0.0001))
    def test_monotone(self, p, bump):
        assert nines(min(p + bump, 1.0)) >= nines(p)


class TestFaultCurveLaws:
    @given(
        st.floats(min_value=1e-8, max_value=1e-2),
        st.floats(min_value=0.0, max_value=1e5),
        st.floats(min_value=0.0, max_value=1e5),
    )
    def test_constant_hazard_additive_windows(self, rate, t0, dt):
        curve = ConstantHazard(rate)
        h_total = curve.cumulative_hazard(0.0, t0 + dt)
        h_split = curve.cumulative_hazard(0.0, t0) + curve.cumulative_hazard(t0, t0 + dt)
        assert h_total == pytest.approx(h_split, rel=1e-9, abs=1e-12)

    @given(
        st.floats(min_value=0.2, max_value=5.0),
        st.floats(min_value=10.0, max_value=1e5),
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1e4),
    )
    def test_failure_probability_monotone_in_window(self, shape, scale, t0, dt):
        curve = WeibullCurve(shape, scale)
        assert curve.failure_probability(t0, t0 + dt) <= curve.failure_probability(
            t0, t0 + dt + 1.0
        )

    @given(st.floats(min_value=1e-7, max_value=1e-3), st.integers(min_value=0, max_value=10**6))
    def test_survival_in_unit_interval(self, rate, hours):
        curve = ConstantHazard(rate)
        s = curve.survival_probability(0.0, float(hours))
        assert 0.0 <= s <= 1.0


class TestQuorumLaws:
    @given(st.integers(min_value=2, max_value=40), st.data())
    def test_majority_quorums_pairwise_intersect(self, n, data):
        k = n // 2 + 1
        system = ProbabilisticQuorums(n, k)
        q1 = system.sample_quorum(seed=data.draw(st.integers(0, 2**32 - 1)))
        q2 = system.sample_quorum(seed=data.draw(st.integers(0, 2**32 - 1)))
        assert q1 & q2  # majority-sized subsets always overlap

    @given(st.integers(min_value=2, max_value=50))
    def test_intersection_probability_in_unit_interval(self, n):
        for k in (1, max(1, n // 3), n):
            p = ProbabilisticQuorums(n, k).intersection_probability()
            assert 0.0 <= p <= 1.0 + 1e-12

    @given(
        st.integers(min_value=3, max_value=30),
        st.floats(min_value=0.0, max_value=0.9),
    )
    def test_correct_overlap_monotone_in_k(self, n, p_fail):
        values = [
            ProbabilisticQuorums(n, k).intersection_in_correct_probability(p_fail)
            for k in range(1, n + 1)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestSimulatorDeterminismLaw:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_same_seed_same_trace(self, seed):
        from repro.sim import Cluster, run_scenario
        from repro.sim.raft import raft_node_factory

        def run():
            cluster = Cluster(3, raft_node_factory(), seed=seed)
            trace = run_scenario(cluster, commands=["a", "b"], duration=3.0)
            return [(c.time, c.node_id, c.slot, c.value) for c in trace.commits]

        assert run() == run()
