"""Tests for the sampled-quorum replication protocol (§4)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigurationError
from repro.sim import Cluster
from repro.sim.checker import check_agreement
from repro.sim.sampled import sampled_quorum_factory, slot_survivors


def _run(n=12, k=3, commands=5, seed=0, duration=5.0, crashes=()):
    cluster = Cluster(n, sampled_quorum_factory(quorum_size=k), seed=seed)
    for node_id, at in crashes:
        cluster.crash_at(node_id, at)
    cluster.start()
    for i in range(commands):
        cluster.submit(f"v{i}", at=0.2 + i * 0.1)
    cluster.run_until(duration)
    return cluster


class TestHappyPath:
    def test_all_commands_commit(self):
        cluster = _run()
        leader = cluster.nodes[0]
        assert set(leader.committed.values()) == {f"v{i}" for i in range(5)}

    def test_payload_lives_exactly_on_sample(self):
        cluster = _run(seed=1)
        leader = cluster.nodes[0]
        for slot, quorum in leader.sampled_quorums.items():
            assert slot_survivors(cluster, slot) == quorum

    def test_all_replicas_learn_decisions(self):
        cluster = _run(seed=2)
        for process in cluster.nodes:
            assert set(process.learned.values()) >= {f"v{i}" for i in range(5)}

    def test_agreement_across_replicas(self):
        cluster = _run(seed=3)
        assert check_agreement(cluster.trace).holds

    def test_deterministic_quorum_draws(self):
        a = _run(seed=9).nodes[0].sampled_quorums
        b = _run(seed=9).nodes[0].sampled_quorums
        assert a == b

    def test_message_cost_is_sublinear(self):
        """The cost pitch: k copies per slot, not n."""
        n, k, commands = 30, 3, 10
        cluster = _run(n=n, k=k, commands=commands, seed=4)
        # Appends+acks scale with k; commit notices with n.
        sent = cluster.network.messages_sent
        assert sent < commands * (2 * k + n + 5)


class TestFaultBehaviour:
    def test_sample_member_crash_stalls_slot(self):
        cluster = Cluster(6, sampled_quorum_factory(quorum_size=3), seed=5)
        cluster.start()
        cluster.run_until(0.1)
        # Submit, then immediately crash a sampled member before acks land.
        cluster.submit("doomed")
        leader = cluster.nodes[0]
        quorum = leader.sampled_quorums[1]
        victim = next(iter(quorum - {0}))
        cluster.nodes[victim].crash()
        cluster.run_until(3.0)
        # Depending on message timing the ack may have squeaked through;
        # accept either, but if uncommitted it must still be pending.
        if 1 not in leader.committed:
            assert 1 in leader.pending_values

    def test_commit_survives_non_member_crashes(self):
        cluster = Cluster(10, sampled_quorum_factory(quorum_size=3), seed=6)
        cluster.start()
        cluster.submit("sturdy", at=0.2)
        cluster.run_until(1.0)
        leader = cluster.nodes[0]
        assert 1 in leader.committed
        quorum = leader.sampled_quorums[1]
        for node in range(10):
            if node not in quorum and node != 0:
                cluster.nodes[node].crash()
        cluster.run_until(2.0)
        assert slot_survivors(cluster, 1) == quorum

    def test_durability_lost_iff_sample_wiped(self):
        cluster = Cluster(10, sampled_quorum_factory(quorum_size=3), seed=7)
        cluster.start()
        cluster.submit("fragile", at=0.2)
        cluster.run_until(1.0)
        leader = cluster.nodes[0]
        quorum = leader.sampled_quorums[1]
        for node in quorum:
            cluster.nodes[node].crash()
        cluster.run_until(2.0)
        assert slot_survivors(cluster, 1) == frozenset()

    def test_invalid_quorum_size(self):
        with pytest.raises(InvalidConfigurationError):
            Cluster(3, sampled_quorum_factory(quorum_size=5), seed=0)


class TestLossyNetwork:
    def test_retry_drives_commit_through_drops(self):
        cluster = Cluster(
            8,
            sampled_quorum_factory(quorum_size=3),
            drop_probability=0.3,
            seed=8,
        )
        cluster.start()
        for i in range(4):
            cluster.submit(f"lossy{i}", at=0.2 + 0.1 * i)
        cluster.run_until(10.0)
        leader = cluster.nodes[0]
        assert set(leader.committed.values()) == {f"lossy{i}" for i in range(4)}
